//! End-to-end tests: workers exchanging gradients through simulated
//! switches running the iSwitch extension — the paper's Fig. 1c (star) and
//! Fig. 10 (rack-scale hierarchy) deployments.

use std::any::Any;

use iswitch_core::{
    control_packet, decode_control, decode_data, gradient_packets, AggregationRole, ControlMessage,
    ExtensionConfig, GradientAssembler, IswitchExtension, FAULT_RESET_TOKEN,
};
use iswitch_netsim::{
    build_star, build_tree, build_tree3, host_ip, FaultAction, FaultPlan, HostApp, HostCtx,
    LinkSpec, LossModel, Packet, PortId, SimDuration, SimTime, Simulator, Switch, SwitchRole,
    TopologyConfig,
};

/// A scripted worker: joins (optionally), pushes one gradient vector after
/// `start_delay`, reassembles the broadcast result, and asks for Help if a
/// result segment goes missing past a timeout.
struct ScriptedWorker {
    grad: Vec<f32>,
    start_delay: SimDuration,
    join_first: bool,
    worker_id: u32,
    help_timeout: Option<SimDuration>,
    /// On timeout, re-push the whole gradient instead of asking for Help —
    /// the recovery a worker needs when the *switch* lost its state (a
    /// restart wipes partial sums, so there is nothing to Help-serve).
    retransmit_on_timeout: bool,
    assembler: GradientAssembler,
    result: Option<Vec<f32>>,
    result_at: Option<SimTime>,
    acks: Vec<ControlMessage>,
}

const TIMER_SEND: u64 = 1;
const TIMER_HELP: u64 = 2;

impl ScriptedWorker {
    fn new(grad: Vec<f32>, start_delay: SimDuration) -> Self {
        let assembler = GradientAssembler::new(grad.len());
        ScriptedWorker {
            grad,
            start_delay,
            join_first: false,
            worker_id: 0,
            help_timeout: None,
            retransmit_on_timeout: false,
            assembler,
            result: None,
            result_at: None,
            acks: Vec::new(),
        }
    }
}

impl HostApp for ScriptedWorker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.set_timer(self.start_delay, TIMER_SEND);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: u64) {
        match token {
            TIMER_SEND => {
                if self.join_first {
                    let join = ControlMessage::Join {
                        worker_id: self.worker_id,
                        grad_len: self.grad.len() as u32,
                    };
                    let pkt = control_packet(ctx.ip(), iswitch_core::UPSTREAM_IP, &join);
                    ctx.send(pkt);
                }
                for pkt in gradient_packets(ctx.ip(), &self.grad) {
                    ctx.send(pkt);
                }
                if let Some(timeout) = self.help_timeout {
                    ctx.set_timer(timeout, TIMER_HELP);
                }
            }
            TIMER_HELP if self.result.is_none() && self.retransmit_on_timeout => {
                for pkt in gradient_packets(ctx.ip(), &self.grad) {
                    ctx.send(pkt);
                }
            }
            TIMER_HELP if self.result.is_none() => {
                for seg in self.assembler.missing() {
                    let pkt = control_packet(
                        ctx.ip(),
                        iswitch_core::UPSTREAM_IP,
                        &ControlMessage::Help { seg },
                    );
                    ctx.send(pkt);
                }
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
        if let Some(seg) = decode_data(&pkt) {
            if self.result.is_none() && self.assembler.insert(&seg).unwrap_or(false) {
                let asm =
                    std::mem::replace(&mut self.assembler, GradientAssembler::new(self.grad.len()));
                self.result = Some(asm.into_mean());
                self.result_at = Some(ctx.now());
            }
        } else if let Some(msg) = decode_control(&pkt) {
            self.acks.push(msg);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn worker_grad(w: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (w + 1) as f32 + (i % 7) as f32 * 0.25)
        .collect()
}

fn expected_mean(n: usize, len: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; len];
    for w in 0..n {
        for (a, g) in acc.iter_mut().zip(worker_grad(w, len)) {
            *a += g;
        }
    }
    for a in &mut acc {
        *a /= n as f32;
    }
    acc
}

fn build_star_sim(
    n: usize,
    len: usize,
    mk_worker: impl Fn(usize) -> ScriptedWorker,
) -> (Simulator, iswitch_netsim::Star) {
    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = (0..n)
        .map(|w| Box::new(mk_worker(w)) as Box<dyn HostApp>)
        .collect();
    // Ports on the switch are assigned in connect order: worker i -> port i.
    let child_ports: Vec<PortId> = (0..n).map(PortId::new).collect();
    let ext = IswitchExtension::new(ExtensionConfig::for_star(child_ports, len));
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    (sim, star)
}

#[test]
fn star_aggregates_and_broadcasts_to_all_workers() {
    let (n, len) = (4, 1000);
    let (mut sim, star) = build_star_sim(n, len, |w| {
        ScriptedWorker::new(worker_grad(w, len), SimDuration::from_micros(w as u64 * 3))
    });
    sim.run_until_idle();
    let expect = expected_mean(n, len);
    for &h in &star.hosts {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        let got = worker
            .result
            .as_ref()
            .expect("every worker gets the result");
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-4, "aggregate mismatch: {a} vs {b}");
        }
    }
}

#[test]
fn star_aggregation_takes_two_hops_of_time() {
    // One full gradient push + broadcast should complete in roughly
    // serialization(model)·2 plus small overheads — the paper's two-hop
    // claim. For 1000 floats (3 packets) at 10 GbE this is tens of µs.
    let len = 1000;
    let (mut sim, star) = build_star_sim(3, len, |w| {
        ScriptedWorker::new(worker_grad(w, len), SimDuration::ZERO)
    });
    sim.run_until_idle();
    let worker = sim
        .device::<iswitch_netsim::Host>(star.hosts[0])
        .app::<ScriptedWorker>();
    let done = worker.result_at.expect("finished");
    assert!(
        done < SimTime::from_nanos(100_000),
        "two-hop aggregation should finish well under 100µs, took {done}"
    );
}

#[test]
fn interleaved_packet_arrivals_still_sum_correctly() {
    // Workers start at identical times so their packets interleave at the
    // switch; on-the-fly aggregation must be order-insensitive.
    let (n, len) = (4, 5000);
    let (mut sim, star) = build_star_sim(n, len, |w| {
        ScriptedWorker::new(worker_grad(w, len), SimDuration::ZERO)
    });
    sim.run_until_idle();
    let expect = expected_mean(n, len);
    let worker = sim
        .device::<iswitch_netsim::Host>(star.hosts[3])
        .app::<ScriptedWorker>();
    let got = worker.result.as_ref().expect("result");
    for (a, b) in got.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn tree_hierarchical_aggregation_equals_flat_sum() {
    // Two racks of three workers under a core switch (Fig. 10): ToRs
    // aggregate locally, the core globally, results fan back down.
    let len = 2000;
    let racks = 2;
    let per_rack = 3;
    let mut sim = Simulator::new();
    let rack_apps: Vec<Vec<Box<dyn HostApp>>> = (0..racks)
        .map(|r| {
            (0..per_rack)
                .map(|i| {
                    Box::new(ScriptedWorker::new(
                        worker_grad(r * per_rack + i, len),
                        SimDuration::from_micros((r * per_rack + i) as u64),
                    )) as Box<dyn HostApp>
                })
                .collect()
        })
        .collect();
    let mut mk_ext = |role: SwitchRole| -> Option<Box<dyn iswitch_netsim::SwitchExtension>> {
        let ext = match role {
            SwitchRole::Tor(_) => {
                // ToR ports: workers 0..per_rack, then the uplink.
                IswitchExtension::new(ExtensionConfig::for_tree_level(
                    AggregationRole::Intermediate {
                        uplink: PortId::new(per_rack),
                    },
                    (0..per_rack).map(PortId::new).collect(),
                    len,
                ))
            }
            SwitchRole::Core => IswitchExtension::new(ExtensionConfig::for_tree_level(
                AggregationRole::Root,
                (0..racks).map(PortId::new).collect(),
                len,
            )),
            SwitchRole::Agg(_) => unreachable!("two-level tree"),
        };
        Some(Box::new(ext))
    };
    let tree = build_tree(&mut sim, rack_apps, &mut mk_ext, &TopologyConfig::default());
    sim.run_until_idle();

    let expect = expected_mean(racks * per_rack, len);
    for h in tree.all_hosts() {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        let got = worker.result.as_ref().expect("every worker converges");
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-3, "hierarchical sum mismatch");
        }
    }
    // The core switch must have aggregated exactly rack-count contributions.
    let core_sw = sim.device_mut::<Switch>(tree.core);
    let ext = core_sw.extension::<IswitchExtension>();
    assert_eq!(
        ext.accelerator().stats().packets_in as usize,
        racks * iswitch_core::num_segments(len)
    );
}

#[test]
fn three_level_hierarchy_aggregates_correctly() {
    // Fig. 10's full hierarchy: 2 AGGs x 2 ToRs x 3 workers = 12 workers.
    // ToRs aggregate 3 workers; AGGs aggregate 2 ToR contributions; the
    // core aggregates 2 AGG contributions and broadcasts back down.
    let len = 1500;
    let (aggs, tors_per_agg, per_rack) = (2usize, 2usize, 3usize);
    let total = aggs * tors_per_agg * per_rack;
    let mut sim = Simulator::new();
    let mut next = 0usize;
    let apps: Vec<Vec<Vec<Box<dyn HostApp>>>> = (0..aggs)
        .map(|_| {
            (0..tors_per_agg)
                .map(|_| {
                    (0..per_rack)
                        .map(|_| {
                            let w = next;
                            next += 1;
                            Box::new(ScriptedWorker::new(
                                worker_grad(w, len),
                                SimDuration::from_micros(w as u64 * 2),
                            )) as Box<dyn HostApp>
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut mk_ext = |role: SwitchRole| -> Option<Box<dyn iswitch_netsim::SwitchExtension>> {
        let (agg_role, children) = match role {
            SwitchRole::Tor(_) => (
                AggregationRole::Intermediate {
                    uplink: PortId::new(per_rack),
                },
                per_rack,
            ),
            SwitchRole::Agg(_) => (
                AggregationRole::Intermediate {
                    uplink: PortId::new(tors_per_agg),
                },
                tors_per_agg,
            ),
            SwitchRole::Core => (AggregationRole::Root, aggs),
        };
        Some(Box::new(IswitchExtension::new(
            ExtensionConfig::for_tree_level(
                agg_role,
                (0..children).map(PortId::new).collect(),
                len,
            ),
        )))
    };
    let tree = build_tree3(&mut sim, apps, &mut mk_ext, &TopologyConfig::default());
    sim.run_until_idle();

    let expect = expected_mean(total, len);
    for h in tree.all_hosts() {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        let got = worker.result.as_ref().expect("all 12 workers converge");
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-3, "3-level hierarchical sum mismatch");
        }
    }
    // The core only saw one contribution per AGG per segment.
    let core_sw = sim.device_mut::<Switch>(tree.core);
    let ext = core_sw.extension::<IswitchExtension>();
    assert_eq!(
        ext.accelerator().stats().packets_in as usize,
        aggs * iswitch_core::num_segments(len)
    );
}

#[test]
fn join_and_set_h_are_acknowledged() {
    let len = 100;
    let (mut sim, star) = build_star_sim(2, len, |w| {
        let mut worker = ScriptedWorker::new(worker_grad(w, len), SimDuration::from_micros(5));
        worker.join_first = true;
        worker.worker_id = w as u32;
        worker
    });
    sim.run_until_idle();
    for &h in &star.hosts {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        assert!(
            worker
                .acks
                .iter()
                .any(|m| matches!(m, ControlMessage::Ack { of: 0x01, ok: true })),
            "join should be acked"
        );
        assert!(worker.result.is_some());
    }
    let sw = sim.device_mut::<Switch>(star.switch);
    let ext = sw.extension::<IswitchExtension>();
    assert_eq!(ext.membership().worker_count(), 2);
}

#[test]
fn lost_result_recovered_via_help() {
    // Drop exactly one switch->worker result packet; the worker times out
    // and asks the switch to retransmit from its result cache.
    let (n, len) = (2, 800);
    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = (0..n)
        .map(|w| {
            let mut worker = ScriptedWorker::new(worker_grad(w, len), SimDuration::ZERO);
            worker.help_timeout = Some(SimDuration::from_millis(1));
            Box::new(worker) as Box<dyn HostApp>
        })
        .collect();
    let child_ports: Vec<PortId> = (0..n).map(PortId::new).collect();
    let ext = IswitchExtension::new(ExtensionConfig::for_star(child_ports, len));
    // 800 floats -> 3 segments. Worker 0's link: drop one downward packet.
    // Sequence numbers count both directions on the link; worker 0 sends
    // 3 data packets (seq 0..2), then the three results come down (3..5).
    let cfg = TopologyConfig {
        edge: LinkSpec::ten_gbe(),
        ..TopologyConfig::default()
    };
    let star = {
        // Build with per-link loss: hand-wire instead of build_star.
        let switch = sim.add_node(
            Box::new(Switch::with_extension(
                iswitch_netsim::RouteTable::new(),
                Box::new(ext),
            )),
            iswitch_netsim::NodeOpts::new("switch").with_rx_overhead(cfg.switch_latency),
        );
        let mut routes = iswitch_netsim::RouteTable::new();
        let mut hosts = Vec::new();
        for (i, app) in apps.into_iter().enumerate() {
            let ip = host_ip(0, i);
            let node = sim.add_node(
                Box::new(iswitch_netsim::Host::new(ip, app)),
                iswitch_netsim::NodeOpts::new(format!("host{i}"))
                    .with_tx_overhead(cfg.host_tx_overhead)
                    .with_rx_overhead(cfg.host_rx_overhead),
            );
            let spec = if i == 0 {
                LinkSpec::ten_gbe().with_loss(LossModel::Exact { drops: vec![4] })
            } else {
                LinkSpec::ten_gbe()
            };
            let (_, _, sw_port) = sim.connect(node, switch, &spec);
            routes.add(ip, sw_port);
            hosts.push(node);
        }
        *sim.device_mut::<Switch>(switch).routes_mut() = routes;
        hosts
    };
    sim.run_until_idle();
    for &h in &star {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        assert!(
            worker.result.is_some(),
            "worker recovered despite the lost result"
        );
    }
    assert!(sim.stats().packets_dropped >= 1);
}

#[test]
fn stale_partial_rounds_expire_and_broadcast() {
    // Drop one worker's contribution for one segment. With stale-flush
    // enabled the switch eventually broadcasts the partial aggregate
    // (count < N), and the per-segment count metadata lets workers still
    // average correctly.
    let (n, len) = (3, 500);
    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = (0..n)
        .map(|w| {
            Box::new(ScriptedWorker::new(worker_grad(w, len), SimDuration::ZERO))
                as Box<dyn HostApp>
        })
        .collect();
    let ext = IswitchExtension::new(
        ExtensionConfig::for_star((0..n).map(PortId::new).collect(), len)
            .with_stale_flush(SimDuration::from_millis(1)),
    );
    // 500 floats -> 2 segments. Drop worker 0's second data packet (its
    // uplink sequence number 1).
    let cfg = TopologyConfig::default();
    let switch = sim.add_node(
        Box::new(Switch::with_extension(
            iswitch_netsim::RouteTable::new(),
            Box::new(ext),
        )),
        iswitch_netsim::NodeOpts::new("switch").with_rx_overhead(cfg.switch_latency),
    );
    let mut routes = iswitch_netsim::RouteTable::new();
    let mut hosts = Vec::new();
    for (i, app) in apps.into_iter().enumerate() {
        let ip = host_ip(0, i);
        let node = sim.add_node(
            Box::new(iswitch_netsim::Host::new(ip, app)),
            iswitch_netsim::NodeOpts::new(format!("host{i}"))
                .with_tx_overhead(cfg.host_tx_overhead)
                .with_rx_overhead(cfg.host_rx_overhead),
        );
        let spec = if i == 0 {
            LinkSpec::ten_gbe().with_loss(LossModel::Exact { drops: vec![1] })
        } else {
            LinkSpec::ten_gbe()
        };
        let (_, _, sw_port) = sim.connect(node, switch, &spec);
        routes.add(ip, sw_port);
        hosts.push(node);
    }
    *sim.device_mut::<Switch>(switch).routes_mut() = routes;
    sim.run_until_idle();

    // Every worker completes: segment 0 averaged over 3, segment 1 over 2.
    for &h in &hosts {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        let got = worker
            .result
            .as_ref()
            .expect("partial flush completes the round");
        // Segment 0 (first 366 elements): mean of workers 0,1,2.
        let full_mean: f32 =
            (worker_grad(0, len)[0] + worker_grad(1, len)[0] + worker_grad(2, len)[0]) / 3.0;
        assert!((got[0] - full_mean).abs() < 1e-4);
        // Segment 1: worker 0's packet was dropped -> mean of workers 1,2.
        let partial_mean: f32 = (worker_grad(1, len)[400] + worker_grad(2, len)[400]) / 2.0;
        assert!(
            (got[400] - partial_mean).abs() < 1e-4,
            "expected partial mean {partial_mean}, got {}",
            got[400]
        );
    }
    let sw = sim.device_mut::<Switch>(switch);
    assert_eq!(sw.extension::<IswitchExtension>().stats().stale_flushes, 1);
}

#[test]
fn fault_plan_exact_drop_is_recovered_by_partial_flush() {
    // Same loss scenario as `stale_partial_rounds_expire_and_broadcast`,
    // but injected through a FaultPlan against a stock `build_star`
    // topology: at t=0 worker 0's edge link gets an Exact loss model that
    // drops its second data packet (link sequence number 1). The stale
    // sweep flushes the stuck segment and every worker still completes
    // with the correct (per-segment count-weighted) mean.
    let (n, len) = (3, 500); // 2 segments
    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = (0..n)
        .map(|w| {
            let mut worker = ScriptedWorker::new(worker_grad(w, len), SimDuration::ZERO);
            worker.help_timeout = Some(SimDuration::from_millis(4));
            Box::new(worker) as Box<dyn HostApp>
        })
        .collect();
    let ext = IswitchExtension::new(
        ExtensionConfig::for_star((0..n).map(PortId::new).collect(), len)
            .with_stale_flush(SimDuration::from_millis(1)),
    );
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    let mut plan = FaultPlan::new();
    plan.push(
        SimTime::ZERO,
        FaultAction::SetLinkLoss {
            link: star.host_links[0],
            loss: LossModel::Exact { drops: vec![1] },
        },
    );
    sim.install_fault_plan(&plan);
    sim.run_until_idle();

    for &h in &star.hosts {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        let got = worker
            .result
            .as_ref()
            .expect("partial flush completes the round");
        // Segment 0: all three contributions arrived.
        let full_mean =
            (worker_grad(0, len)[0] + worker_grad(1, len)[0] + worker_grad(2, len)[0]) / 3.0;
        assert!((got[0] - full_mean).abs() < 1e-4);
        // Segment 1: worker 0's packet was dropped by the injected loss
        // model -> mean over workers 1 and 2 only.
        let partial_mean = (worker_grad(1, len)[400] + worker_grad(2, len)[400]) / 2.0;
        assert!(
            (got[400] - partial_mean).abs() < 1e-4,
            "expected partial mean {partial_mean}, got {}",
            got[400]
        );
    }
    assert_eq!(sim.stats().faults_applied, 1);
    assert_eq!(sim.stats().packets_dropped, 1);
    let sw = sim.device_mut::<Switch>(star.switch);
    assert_eq!(sw.extension::<IswitchExtension>().stats().stale_flushes, 1);
}

#[test]
fn injected_switch_restart_is_recovered_by_retransmission() {
    // A FaultPlan fires the reserved fault-reset timer on the switch after
    // two of three contributions arrived: the accelerator loses all
    // volatile state (partial sums, counters, result cache). The two wiped
    // workers re-push on timeout and the round completes with the full
    // three-way mean — nothing double-counted, nothing lost.
    let (n, len) = (3, 400);
    let mut sim = Simulator::new();
    // Workers 0 and 1 push immediately (wiped by the restart); worker 2
    // pushes after the restart. Staggered timeouts keep the recovery
    // deterministic: by the time worker 2's timer could fire, the round
    // has completed and the guard sees the result.
    let timeouts = [1_000u64, 1_200, 5_000];
    let apps: Vec<Box<dyn HostApp>> = (0..n)
        .map(|w| {
            let delay = if w == 2 {
                SimDuration::from_micros(100)
            } else {
                SimDuration::ZERO
            };
            let mut worker = ScriptedWorker::new(worker_grad(w, len), delay);
            worker.help_timeout = Some(SimDuration::from_micros(timeouts[w]));
            worker.retransmit_on_timeout = true;
            Box::new(worker) as Box<dyn HostApp>
        })
        .collect();
    let ext = IswitchExtension::new(ExtensionConfig::for_star(
        (0..n).map(PortId::new).collect(),
        len,
    ));
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    let mut plan = FaultPlan::new();
    plan.push(
        SimTime::from_nanos(50_000),
        FaultAction::InjectTimer {
            node: star.switch,
            token: FAULT_RESET_TOKEN,
        },
    );
    sim.install_fault_plan(&plan);
    sim.run_until_idle();

    let expect = expected_mean(n, len);
    for &h in &star.hosts {
        let worker = sim
            .device::<iswitch_netsim::Host>(h)
            .app::<ScriptedWorker>();
        let got = worker
            .result
            .as_ref()
            .expect("every worker recovers from the switch restart");
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-4, "post-restart mismatch: {a} vs {b}");
        }
    }
    let sw = sim.device_mut::<Switch>(star.switch);
    assert_eq!(sw.extension::<IswitchExtension>().stats().fault_resets, 1);
}

#[test]
fn halt_is_relayed_to_every_worker() {
    // One worker sends Halt; the switch fans it out to all children
    // ("suspend the training job on all workers", Table 2).
    let len = 50;
    struct HaltSender {
        send_halt: bool,
        halts_seen: u32,
    }
    impl HostApp for HaltSender {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
            if self.send_halt {
                ctx.set_timer(SimDuration::from_micros(10), 0);
            }
        }
        fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, _token: u64) {
            let pkt = control_packet(ctx.ip(), iswitch_core::UPSTREAM_IP, &ControlMessage::Halt);
            ctx.send(pkt);
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
            if let Some(ControlMessage::Halt) = iswitch_core::decode_control(&pkt) {
                self.halts_seen += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = (0..3)
        .map(|i| {
            Box::new(HaltSender {
                send_halt: i == 0,
                halts_seen: 0,
            }) as Box<dyn HostApp>
        })
        .collect();
    let ext = IswitchExtension::new(ExtensionConfig::for_star(
        (0..3).map(PortId::new).collect(),
        len,
    ));
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    sim.run_until_idle();
    for &h in &star.hosts {
        let w = sim.device::<iswitch_netsim::Host>(h).app::<HaltSender>();
        assert_eq!(
            w.halts_seen, 1,
            "every worker (including the sender) gets the relay"
        );
    }
}

#[test]
fn reset_clears_in_flight_aggregation() {
    // Two of three contributions arrive, then Reset: the round restarts
    // and the pre-reset partial never leaks into the next aggregate.
    let len = 10;
    struct Resetter;
    impl HostApp for Resetter {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
            ctx.set_timer(SimDuration::from_micros(50), 0);
        }
        fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, _token: u64) {
            let pkt = control_packet(ctx.ip(), iswitch_core::UPSTREAM_IP, &ControlMessage::Reset);
            ctx.send(pkt);
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, _pkt: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut sim = Simulator::new();
    // Workers 0 and 1 push immediately (partial 2/3); worker 2 (Resetter)
    // resets at 50 µs; then workers push again at 200 µs via ScriptedWorker
    // staging — simplest: 3 scripted workers at 200 µs AFTER the reset,
    // plus two eager one-segment pushes beforehand.
    struct EagerThenFull {
        grad: Vec<f32>,
        poison_first: bool,
        asm: GradientAssembler,
        result: Option<Vec<f32>>,
    }
    impl HostApp for EagerThenFull {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
            if self.poison_first {
                ctx.set_timer(SimDuration::from_micros(1), 1); // eager partial
            }
            ctx.set_timer(SimDuration::from_micros(200), 2); // real round
        }
        fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: u64) {
            if token == 1 {
                // A poisoned half-round that Reset must erase.
                for pkt in gradient_packets(ctx.ip(), &vec![1_000.0; self.grad.len()]) {
                    ctx.send(pkt);
                }
            } else {
                for pkt in gradient_packets(ctx.ip(), &self.grad) {
                    ctx.send(pkt);
                }
            }
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
            if let Some(seg) = decode_data(&pkt) {
                if self.result.is_none() && self.asm.insert(&seg).unwrap_or(false) {
                    let asm =
                        std::mem::replace(&mut self.asm, GradientAssembler::new(self.grad.len()));
                    self.result = Some(asm.into_mean());
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let apps: Vec<Box<dyn HostApp>> = vec![
        Box::new(EagerThenFull {
            grad: vec![1.0; len],
            poison_first: true,
            asm: GradientAssembler::new(len),
            result: None,
        }),
        Box::new(EagerThenFull {
            grad: vec![2.0; len],
            poison_first: false,
            asm: GradientAssembler::new(len),
            result: None,
        }),
        Box::new(Resetter),
    ];
    // Threshold 2: only the two data workers contribute.
    let ext = IswitchExtension::new(
        ExtensionConfig::for_star((0..3).map(PortId::new).collect(), len).with_threshold(2),
    );
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    sim.run_until_idle();
    // Without the reset, worker 0's poisoned half-round would absorb
    // worker 1's clean 200 µs contribution (summing 1000 + 2); with it,
    // the first completed round is fully clean: mean (1 + 2) / 2 = 1.5.
    let w0 = sim
        .device::<iswitch_netsim::Host>(star.hosts[0])
        .app::<EagerThenFull>();
    let got = w0.result.as_ref().expect("clean round completes");
    assert!(
        got.iter().all(|&v| (v - 1.5).abs() < 1e-5),
        "reset failed to clear the poisoned partial: {got:?}"
    );
}

#[test]
fn non_iswitch_traffic_passes_through_untouched() {
    let len = 50;
    let mut sim = Simulator::new();

    /// Sends a plain UDP packet to the other worker through the switch.
    struct PlainSender {
        peer: iswitch_netsim::IpAddr,
        got_plain: usize,
    }
    impl HostApp for PlainSender {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
            let pkt = Packet::udp(ctx.ip(), self.peer, 5000, 5000, 0).with_payload(vec![42u8; 64]);
            ctx.send(pkt);
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
            if pkt.ip.tos == 0 {
                self.got_plain += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let apps: Vec<Box<dyn HostApp>> = vec![
        Box::new(PlainSender {
            peer: host_ip(0, 1),
            got_plain: 0,
        }),
        Box::new(PlainSender {
            peer: host_ip(0, 0),
            got_plain: 0,
        }),
    ];
    let ext = IswitchExtension::new(ExtensionConfig::for_star(
        vec![PortId::new(0), PortId::new(1)],
        len,
    ));
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    sim.run_until_idle();
    for &h in &star.hosts {
        assert_eq!(
            sim.device::<iswitch_netsim::Host>(h)
                .app::<PlainSender>()
                .got_plain,
            1
        );
    }
    let sw = sim.device_mut::<Switch>(star.switch);
    assert_eq!(sw.extension::<IswitchExtension>().stats().passed_through, 2);
}
