//! Control-plane elasticity: workers joining and leaving a running job
//! via `Join`/`Leave`, with the switch adapting its aggregation threshold
//! (`auto_threshold` — the membership-table machinery of Fig. 9 driving
//! the data plane).

use std::any::Any;

use iswitch_core::{
    control_packet, decode_data, gradient_packets_round, seg_round, ControlMessage,
    ExtensionConfig, IswitchExtension, UPSTREAM_IP,
};
use iswitch_netsim::{
    build_star, HostApp, HostCtx, Packet, PortId, SimDuration, Simulator, Switch, TopologyConfig,
};

const T_JOIN: u64 = 1;
const T_PUSH: u64 = 2;
const T_LEAVE: u64 = 3;

/// A worker that joins at `join_at`, pushes one gradient per round
/// thereafter, and optionally leaves after `rounds_before_leave`.
struct ElasticWorker {
    worker_id: u32,
    grad: Vec<f32>,
    join_at: SimDuration,
    push_period: SimDuration,
    rounds_before_leave: Option<u32>,
    round: u32,
    /// `(round, contributor count)` of every aggregate received.
    pub results: Vec<(u32, u16)>,
}

impl ElasticWorker {
    fn new(worker_id: u32, grad: Vec<f32>, join_at_ms: u64) -> Self {
        ElasticWorker {
            worker_id,
            grad,
            join_at: SimDuration::from_millis(join_at_ms),
            push_period: SimDuration::from_millis(2),
            rounds_before_leave: None,
            round: 0,
            results: Vec::new(),
        }
    }
}

impl HostApp for ElasticWorker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.set_timer(self.join_at, T_JOIN);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: u64) {
        match token {
            T_JOIN => {
                let join = ControlMessage::Join {
                    worker_id: self.worker_id,
                    grad_len: self.grad.len() as u32,
                };
                ctx.send(control_packet(ctx.ip(), UPSTREAM_IP, &join));
                ctx.set_timer(SimDuration::from_micros(100), T_PUSH);
            }
            T_PUSH => {
                if let Some(limit) = self.rounds_before_leave {
                    if self.round >= limit {
                        let leave = ControlMessage::Leave {
                            worker_id: self.worker_id,
                        };
                        ctx.send(control_packet(ctx.ip(), UPSTREAM_IP, &leave));
                        ctx.set_timer(SimDuration::from_micros(10), T_LEAVE);
                        return;
                    }
                }
                for pkt in gradient_packets_round(ctx.ip(), &self.grad, self.round) {
                    ctx.send(pkt);
                }
                self.round += 1;
                ctx.set_timer(self.push_period, T_PUSH);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
        if let Some(seg) = decode_data(&pkt) {
            self.results.push((seg_round(seg.seg), seg.count));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_elastic(
    workers: Vec<ElasticWorker>,
    grad_len: usize,
    until_ms: u64,
) -> (
    Simulator,
    Vec<iswitch_netsim::NodeId>,
    iswitch_netsim::NodeId,
) {
    let n = workers.len();
    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = workers
        .into_iter()
        .map(|w| Box::new(w) as Box<dyn HostApp>)
        .collect();
    let mut cfg = ExtensionConfig::for_star((0..n).map(PortId::new).collect(), grad_len);
    cfg.auto_threshold = true;
    cfg.threshold = 1; // adapts upward as workers join
    let ext = IswitchExtension::new(cfg);
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    sim.run_until(iswitch_netsim::SimTime::from_nanos(until_ms * 1_000_000));
    (sim, star.hosts, star.switch)
}

#[test]
fn threshold_grows_as_workers_join() {
    // Worker 0 joins immediately, 1 at 5 ms, 2 at 10 ms. Early rounds
    // aggregate fewer contributors; once everyone joined, H = 3.
    let grad_len = 100;
    let workers = vec![
        ElasticWorker::new(0, vec![1.0; grad_len], 0),
        ElasticWorker::new(1, vec![2.0; grad_len], 5),
        ElasticWorker::new(2, vec![4.0; grad_len], 10),
    ];
    let (mut sim, hosts, switch) = run_elastic(workers, grad_len, 30);

    let sw = sim.device_mut::<Switch>(switch);
    let ext = sw.extension::<IswitchExtension>();
    assert_eq!(ext.membership().worker_count(), 3);
    assert_eq!(ext.accelerator().threshold(), 3);

    // Worker 0 saw early single-contributor aggregates and later
    // 3-contributor ones.
    let w0 = sim
        .device::<iswitch_netsim::Host>(hosts[0])
        .app::<ElasticWorker>();
    assert!(!w0.results.is_empty());
    let counts: Vec<u16> = w0.results.iter().map(|&(_, c)| c).collect();
    assert!(
        counts.contains(&1),
        "solo rounds expected before the others joined"
    );
    assert!(
        counts.contains(&3),
        "full rounds expected after everyone joined"
    );
}

#[test]
fn leave_shrinks_the_threshold_and_training_continues() {
    let grad_len = 50;
    let mut leaver = ElasticWorker::new(1, vec![2.0; grad_len], 0);
    leaver.rounds_before_leave = Some(3);
    let workers = vec![
        ElasticWorker::new(0, vec![1.0; grad_len], 0),
        leaver,
        ElasticWorker::new(2, vec![4.0; grad_len], 0),
    ];
    let (mut sim, hosts, switch) = run_elastic(workers, grad_len, 40);

    let sw = sim.device_mut::<Switch>(switch);
    let ext = sw.extension::<IswitchExtension>();
    assert_eq!(ext.membership().worker_count(), 2, "one worker left");
    assert_eq!(ext.accelerator().threshold(), 2);

    // The remaining workers keep receiving aggregates after the departure,
    // now with 2 contributors.
    let w0 = sim
        .device::<iswitch_netsim::Host>(hosts[0])
        .app::<ElasticWorker>();
    let late = w0
        .results
        .iter()
        .rev()
        .take(5)
        .map(|&(_, c)| c)
        .collect::<Vec<_>>();
    assert!(
        late.iter().all(|&c| c == 2),
        "post-leave rounds should have 2 contributors: {late:?}"
    );
    // And earlier rounds had 3.
    assert!(w0.results.iter().any(|&(_, c)| c == 3));
}
