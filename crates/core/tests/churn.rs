//! Hierarchical aggregation under membership churn: a three-level
//! ToR/AGG/Core deployment (Fig. 10) where one rack's worker leaves and
//! later rejoins mid-run. Every broadcast round must match the membership
//! in force when it ran — both the contributor *count* metadata and the
//! aggregate *values*.

use std::any::Any;

use iswitch_core::{
    control_packet, decode_data, gradient_packets_round, seg_round, AggregationRole,
    ControlMessage, ExtensionConfig, IswitchExtension, UPSTREAM_IP,
};
use iswitch_netsim::{
    build_tree3, HostApp, HostCtx, Packet, PortId, SimDuration, SimTime, Simulator, Switch,
    SwitchRole, TopologyConfig,
};

const T_JOIN: u64 = 1;
const T_PUSH: u64 = 2;
const T_LEAVE: u64 = 3;
const T_REJOIN: u64 = 4;

/// A worker that joins at start, pushes one round-tagged gradient every
/// `push_period`, and optionally leaves at `leave_at` and rejoins at
/// `rejoin_at`. On rejoin it resynchronizes its round counter from the
/// broadcasts it kept receiving while out (results fan out by port, not
/// membership) so its next push lands in the cluster's current round.
struct ChurnWorker {
    worker_id: u32,
    grad: Vec<f32>,
    push_period: SimDuration,
    leave_at: Option<SimDuration>,
    rejoin_at: Option<SimDuration>,
    active: bool,
    round: u32,
    last_seen_round: u32,
    /// `(round, contributor count, mean value)` of every result segment.
    results: Vec<(u32, u16, f32)>,
}

impl ChurnWorker {
    fn new(worker_id: u32, grad: Vec<f32>) -> Self {
        ChurnWorker {
            worker_id,
            grad,
            push_period: SimDuration::from_millis(2),
            leave_at: None,
            rejoin_at: None,
            active: false,
            round: 0,
            last_seen_round: 0,
            results: Vec::new(),
        }
    }

    fn join(&self, ctx: &mut HostCtx<'_, '_>) {
        let join = ControlMessage::Join {
            worker_id: self.worker_id,
            grad_len: self.grad.len() as u32,
        };
        ctx.send(control_packet(ctx.ip(), UPSTREAM_IP, &join));
    }
}

impl HostApp for ChurnWorker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.set_timer(SimDuration::from_micros(1), T_JOIN);
        if let Some(at) = self.leave_at {
            ctx.set_timer(at, T_LEAVE);
        }
        if let Some(at) = self.rejoin_at {
            ctx.set_timer(at, T_REJOIN);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: u64) {
        match token {
            T_JOIN => {
                self.join(ctx);
                self.active = true;
                ctx.set_timer(SimDuration::from_micros(100), T_PUSH);
            }
            T_PUSH if self.active => {
                for pkt in gradient_packets_round(ctx.ip(), &self.grad, self.round) {
                    ctx.send(pkt);
                }
                self.round += 1;
                ctx.set_timer(self.push_period, T_PUSH);
            }
            T_LEAVE => {
                let leave = ControlMessage::Leave {
                    worker_id: self.worker_id,
                };
                ctx.send(control_packet(ctx.ip(), UPSTREAM_IP, &leave));
                self.active = false;
            }
            T_REJOIN => {
                self.join(ctx);
                self.active = true;
                // The rounds moved on without us; resume in the current one.
                self.round = self.last_seen_round + 1;
                ctx.set_timer(SimDuration::from_micros(50), T_PUSH);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
        if let Some(seg) = decode_data(&pkt) {
            let round = seg_round(seg.seg);
            self.last_seen_round = self.last_seen_round.max(round);
            let mean = seg.values[0] / f32::from(seg.count);
            self.results.push((round, seg.count, mean));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn rack_worker_leave_and_rejoin_matches_membership_every_round() {
    // 2 AGGs x 1 ToR x 2 workers = 4 workers, gradient value 2^w per
    // worker so every live subset has a unique mean: all four -> 15/4,
    // without worker 3 -> 7/3. ToRs track membership (auto threshold);
    // AGG and core aggregate a fixed one contribution per child switch.
    let (aggs, tors_per_agg, per_rack) = (2usize, 1usize, 2usize);
    let len = 40; // single segment
    let mut sim = Simulator::new();
    let mut next = 0u32;
    let apps: Vec<Vec<Vec<Box<dyn HostApp>>>> = (0..aggs)
        .map(|_| {
            (0..tors_per_agg)
                .map(|_| {
                    (0..per_rack)
                        .map(|_| {
                            let w = next;
                            next += 1;
                            let mut worker = ChurnWorker::new(w, vec![(1u32 << w) as f32; len]);
                            if w == 3 {
                                // Leave between round-2 and round-3 pushes
                                // (pushes land at 101us + r*2ms), return
                                // between round-9 and round-10.
                                worker.leave_at = Some(SimDuration::from_millis(5));
                                worker.rejoin_at = Some(SimDuration::from_micros(20_050));
                            }
                            Box::new(worker) as Box<dyn HostApp>
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut mk_ext = |role: SwitchRole| -> Option<Box<dyn iswitch_netsim::SwitchExtension>> {
        let cfg = match role {
            SwitchRole::Tor(_) => {
                let mut c = ExtensionConfig::for_tree_level(
                    AggregationRole::Intermediate {
                        uplink: PortId::new(per_rack),
                    },
                    (0..per_rack).map(PortId::new).collect(),
                    len,
                );
                // The churn-aware level: thresholds follow Join/Leave.
                c.auto_threshold = true;
                c.threshold = 1;
                c
            }
            SwitchRole::Agg(_) => ExtensionConfig::for_tree_level(
                AggregationRole::Intermediate {
                    uplink: PortId::new(tors_per_agg),
                },
                (0..tors_per_agg).map(PortId::new).collect(),
                len,
            ),
            SwitchRole::Core => ExtensionConfig::for_tree_level(
                AggregationRole::Root,
                (0..aggs).map(PortId::new).collect(),
                len,
            ),
        };
        Some(Box::new(IswitchExtension::new(cfg)))
    };
    let tree = build_tree3(&mut sim, apps, &mut mk_ext, &TopologyConfig::default());
    sim.run_until(SimTime::from_nanos(30_000_000));

    // Membership settled back to 2 workers on rack B's ToR.
    let tor_b = sim.device_mut::<Switch>(tree.tors[1][0]);
    let ext = tor_b.extension::<IswitchExtension>();
    assert_eq!(ext.membership().worker_count(), 2, "rejoin restored rack B");
    assert_eq!(ext.accelerator().threshold(), 2);

    // Worker 0 (never churned) observed every round; each must match the
    // membership in force when it ran.
    let w0 = sim
        .device::<iswitch_netsim::Host>(tree.hosts[0][0][0])
        .app::<ChurnWorker>();
    let full_mean = (1.0 + 2.0 + 4.0 + 8.0) / 4.0;
    let partial_mean = (1.0 + 2.0 + 4.0) / 3.0;
    let mut seen_full_early = false;
    let mut seen_partial = false;
    let mut seen_full_late = false;
    for &(round, count, mean) in &w0.results {
        match count {
            4 => {
                assert!(
                    (mean - full_mean).abs() < 1e-5,
                    "round {round}: 4-worker round must average all four, got {mean}"
                );
                if round < 3 {
                    seen_full_early = true;
                } else {
                    seen_full_late = true;
                    assert!(round >= 10, "worker 3 was away for rounds 3..10");
                }
            }
            3 => {
                assert!(
                    (mean - partial_mean).abs() < 1e-5,
                    "round {round}: 3-worker round must exclude worker 3, got {mean}"
                );
                assert!(
                    (3..10).contains(&round),
                    "3-worker rounds only while worker 3 is away, got round {round}"
                );
                seen_partial = true;
            }
            other => panic!("round {round}: impossible contributor count {other}"),
        }
    }
    assert!(
        seen_full_early,
        "rounds before the leave aggregate 4 workers"
    );
    assert!(
        seen_partial,
        "rounds during the absence aggregate 3 workers"
    );
    assert!(
        seen_full_late,
        "rounds after the rejoin aggregate 4 workers"
    );

    // The churning worker itself converges back into the job: its last
    // result is a full 4-worker aggregate.
    let w3 = sim
        .device::<iswitch_netsim::Host>(tree.hosts[1][0][1])
        .app::<ChurnWorker>();
    let &(last_round, last_count, last_mean) =
        w3.results.last().expect("worker 3 keeps receiving results");
    assert_eq!(last_count, 4);
    assert!(last_round >= 10);
    assert!((last_mean - full_mean).abs() < 1e-5);
}
