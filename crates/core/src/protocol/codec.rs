//! Pluggable aggregation codecs for the wire-aggregation path.
//!
//! The paper's accelerator sums raw big-endian f32 payloads ("all gradient
//! data are transmitted and computed in a raw float-point format", §3.2).
//! The real in-switch design space is wider: SwitchML aggregates in an
//! integer pipeline with per-packet scaling, and the flexible-switch line
//! treats the datapath format as a per-job knob. An [`AggregationCodec`]
//! captures that knob: it owns the payload layout of worker contributions
//! and switch results, the switch-side accumulator representation
//! ([`WireAcc`]), and the precision contract relating a decoded aggregate
//! to the exact f32 sum.
//!
//! # Wire layout
//!
//! [`CodecKind::F32`] is byte-identical to the legacy format — an 8-byte
//! `Seg` header followed by raw big-endian f32 data, no extra framing —
//! so f32 jobs replay bit-for-bit against pre-codec builds. Every other
//! codec inserts a fixed 4-byte sub-header after the `Seg` header:
//!
//! ```text
//! [0..8]  Seg header: (seg << 16) | contributor count   (big-endian)
//! [8]     codec id (1 = fixed-point, 2 = block-float, 3 = top-k)
//! [9]     flags     (bit0 = WIDE result format, bit1 = SPARSE entries)
//! [10..12] codec parameter (fixed-point: scaling exponent as i8;
//!          block-float / top-k: dense element count, big-endian u16)
//! [12..]  codec body
//! ```
//!
//! Contributions use each codec's *narrow* encoding; switch results use
//! the *wide* encoding (flag bit 0) so an aggregate of up to 2^16
//! contributions re-encodes without overflow. Both encodings of a full
//! segment must fit [`MAX_UDP_PAYLOAD`]; each codec's
//! [`elems_per_segment`](AggregationCodec::elems_per_segment) is chosen so
//! the larger of the two does.
//!
//! # Determinism
//!
//! Every codec is a pure function of its inputs: exponent selection uses
//! bounded search loops (no `log2`), top-k selection breaks magnitude ties
//! by ascending index, and integer accumulation is associative under the
//! engine's deterministic packet order. The f32 accumulators (`F32`,
//! `TopK`) add in arrival order, which the engine replays identically for
//! any `--threads`, so sharded artifacts stay byte-identical per codec.

use std::fmt;
use std::str::FromStr;

use bytes::Bytes;
use iswitch_netsim::MAX_UDP_PAYLOAD;

use crate::error::ProtocolError;
use crate::protocol::data::{DataSegment, SegmentMeta, FLOATS_PER_SEGMENT, SEG_HEADER_BYTES};

/// Bytes of the codec sub-header following the `Seg` header (non-f32 only).
pub const CODEC_HEADER_BYTES: usize = 4;

/// Body offset of a non-f32 codec payload.
const BODY: usize = SEG_HEADER_BYTES + CODEC_HEADER_BYTES;

/// Flag bit 0: the payload carries the codec's wide (result) encoding.
const FLAG_WIDE: u8 = 1;
/// Flag bit 1: the payload carries sparse (index, value) entries.
const FLAG_SPARSE: u8 = 2;

/// i16 elements per fixed-point segment: capped by the *wide* (i32)
/// result encoding, 12 + 4·365 = 1,472 bytes.
pub const FIXED_ELEMS_PER_SEGMENT: usize = (MAX_UDP_PAYLOAD - BODY) / 4;

/// Elements per block-float block (one shared exponent per block).
pub const BLOCK_ELEMS: usize = 32;

/// Elements per block-float segment: capped by the wide encoding,
/// blocks · (1 + 2·32) ≤ 1,460 ⇒ 22 blocks ⇒ 704 elements.
pub const BLOCKFLOAT_ELEMS_PER_SEGMENT: usize =
    ((MAX_UDP_PAYLOAD - BODY) / (1 + 2 * BLOCK_ELEMS)) * BLOCK_ELEMS;

/// Elements per top-k segment: capped by the dense-fallback f32 encoding.
pub const TOPK_ELEMS_PER_SEGMENT: usize = (MAX_UDP_PAYLOAD - BODY) / 4;

/// Top-k keeps the `1/TOPK_DIVISOR` largest-magnitude elements per segment.
pub const TOPK_DIVISOR: usize = 4;

/// Largest fixed-point contribution mantissa (symmetric i16 range).
const FIXED_Q_MAX: i32 = i16::MAX as i32;
/// Largest fixed-point result mantissa (headroom below i32 saturation).
const FIXED_WIDE_Q_MAX: i64 = 1 << 30;
/// Largest block-float contribution mantissa (symmetric i8 range).
const BLOCK_Q_MAX: i32 = i8::MAX as i32;
/// Largest block-float result mantissa (symmetric i16 range).
const BLOCK_WIDE_Q_MAX: i64 = i16::MAX as i64;
/// Exponent search range (binary f32 exponent range, sans denormals).
const EXP_MIN: i32 = -126;
const EXP_MAX: i32 = 127;
/// Block-float exponent bias: stored byte `e` means true exponent
/// `e - 127`; the sentinel 0 marks an all-zero block.
const BLOCK_EXP_BIAS: i32 = 127;

/// The format a job aggregates in — the per-job datapath knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Raw big-endian f32, the paper's format. Bit-identical to the
    /// pre-codec wire layout and accumulation order.
    #[default]
    F32,
    /// SwitchML-style integer aggregation: i16 mantissas scaled by a
    /// per-packet power-of-two exponent, accumulated in saturating i32.
    FixedPoint,
    /// Block floating point: one shared exponent per [`BLOCK_ELEMS`]-element
    /// block, i8 mantissas, accumulated in i32 at the block's running
    /// maximum exponent.
    BlockFloat,
    /// Magnitude sparsification: the top `1/TOPK_DIVISOR` of each segment
    /// as (index, f32) pairs, with a dense fallback when the selection
    /// density makes sparse encoding larger than dense.
    TopK,
}

impl CodecKind {
    /// Every codec, in CLI/report order.
    pub const ALL: [CodecKind; 4] = [
        CodecKind::F32,
        CodecKind::FixedPoint,
        CodecKind::BlockFloat,
        CodecKind::TopK,
    ];

    /// The CLI/report label (`--codec` spelling).
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::F32 => "f32",
            CodecKind::FixedPoint => "fixed-point",
            CodecKind::BlockFloat => "block-float",
            CodecKind::TopK => "top-k",
        }
    }

    /// The codec's format logic.
    pub fn codec(self) -> &'static dyn AggregationCodec {
        match self {
            CodecKind::F32 => &F32Codec,
            CodecKind::FixedPoint => &FixedPointCodec,
            CodecKind::BlockFloat => &BlockFloatCodec,
            CodecKind::TopK => &TopKCodec,
        }
    }

    /// Elements carried per full segment under this codec.
    pub fn elems_per_segment(self) -> usize {
        self.codec().elems_per_segment()
    }

    /// Segments needed for a gradient vector of `len` elements.
    pub fn num_segments(self, len: usize) -> usize {
        len.div_ceil(self.elems_per_segment())
    }

    /// BRAM bytes a `len`-element accumulator will occupy (equals
    /// [`WireAcc::resident_bytes`] of [`AggregationCodec::new_acc`], without
    /// allocating one) — what the accelerator's admission check charges
    /// before opening a round.
    pub fn acc_bytes(self, len: usize) -> usize {
        match self {
            CodecKind::BlockFloat => len * 4 + len.div_ceil(BLOCK_ELEMS),
            _ => len * 4,
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for CodecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(CodecKind::F32),
            "fixed-point" | "fixed" => Ok(CodecKind::FixedPoint),
            "block-float" | "block" => Ok(CodecKind::BlockFloat),
            "top-k" | "topk" => Ok(CodecKind::TopK),
            other => Err(format!(
                "unknown codec `{other}` (expected `f32`, `fixed-point`, `block-float`, or `top-k`)"
            )),
        }
    }
}

/// Switch-side accumulation state for one open segment round, in the
/// owning codec's native representation. Lives in the accelerator's BRAM
/// slot pool; [`WireAcc::resident_bytes`] is what the BRAM budget charges.
#[derive(Debug, Clone)]
pub enum WireAcc {
    /// f32 partial sums (the paper's adders).
    F32(Vec<f32>),
    /// Saturating i32 mantissa sums at the running maximum exponent.
    Fixed {
        /// Per-element mantissa accumulators.
        acc: Vec<i32>,
        /// Scaling exponent the accumulators are expressed in.
        exp: i8,
        /// Whether any contribution has arrived (the first arrival adopts
        /// its exponent rather than aligning to the initial placeholder).
        seeded: bool,
    },
    /// Per-block i32 mantissa sums at per-block running exponents.
    Block {
        /// Per-element mantissa accumulators.
        acc: Vec<i32>,
        /// Per-block biased exponents (0 = no non-zero contribution yet).
        exps: Vec<u8>,
    },
    /// Dense f32 sums fed by sparse or dense top-k contributions.
    TopK(Vec<f32>),
}

impl WireAcc {
    /// Element count of the segment this accumulator serves.
    pub fn len(&self) -> usize {
        match self {
            WireAcc::F32(v) | WireAcc::TopK(v) => v.len(),
            WireAcc::Fixed { acc, .. } | WireAcc::Block { acc, .. } => acc.len(),
        }
    }

    /// Whether the accumulator covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// BRAM bytes this accumulator occupies (f32 and i32 buffers both cost
    /// 4 bytes per element; block-float adds one exponent byte per block).
    pub fn resident_bytes(&self) -> usize {
        match self {
            WireAcc::F32(v) | WireAcc::TopK(v) => v.len() * 4,
            WireAcc::Fixed { acc, .. } => acc.len() * 4,
            WireAcc::Block { acc, exps } => acc.len() * 4 + exps.len(),
        }
    }

    /// Resets in place for reuse at `len` elements (slot recycling).
    pub fn reset(&mut self, len: usize) {
        match self {
            WireAcc::F32(v) | WireAcc::TopK(v) => {
                v.clear();
                v.resize(len, 0.0);
            }
            WireAcc::Fixed { acc, exp, seeded } => {
                acc.clear();
                acc.resize(len, 0);
                *exp = 0;
                *seeded = false;
            }
            WireAcc::Block { acc, exps } => {
                acc.clear();
                acc.resize(len, 0);
                exps.clear();
                exps.resize(len.div_ceil(BLOCK_ELEMS), 0);
            }
        }
    }
}

/// Numeric side effects of one [`AggregationCodec::accumulate`] call —
/// the quantization-pressure signals the accelerator folds into
/// [`crate::AcceleratorStats`] and the `core.switch.NNN.codec_*`
/// telemetry tracks. Lossless codecs (f32, top-k) always report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccEffects {
    /// Elements whose saturating add clamped at ±`i32::MAX` — the
    /// aggregate silently lost magnitude (SwitchML's overflow hazard).
    pub saturations: u64,
    /// Accumulator (or per-block) exponent rebases: a contribution
    /// arrived at a coarser scale and every existing partial sum was
    /// shifted down, discarding low-order bits.
    pub rebases: u64,
}

impl AccEffects {
    /// Folds another accumulate's effects into this one.
    pub fn merge(&mut self, other: AccEffects) {
        self.saturations += other.saturations;
        self.rebases += other.rebases;
    }
}

/// One aggregation format: payload layout, switch-side accumulation, and
/// the precision contract. Implementations are stateless singletons
/// reached through [`CodecKind::codec`].
pub trait AggregationCodec: Sync {
    /// Which [`CodecKind`] this is.
    fn kind(&self) -> CodecKind;

    /// Elements per full segment (both the narrow contribution and the
    /// wide result encoding of a full segment fit [`MAX_UDP_PAYLOAD`]).
    fn elems_per_segment(&self) -> usize;

    /// Payload bytes of a `len`-element worker contribution, headers
    /// included. For [`CodecKind::TopK`] this is the sparse encoding's
    /// worst case (full selection).
    fn contribution_bytes(&self, len: usize) -> usize;

    /// Encodes a worker contribution (`count` = 1 on the wire).
    ///
    /// # Errors
    ///
    /// Rejects non-finite values with [`ProtocolError::InvalidField`]:
    /// quantized formats have no NaN/Inf representation, and letting one
    /// through would silently poison an integer aggregate.
    fn encode_contribution(&self, seg: u64, values: &[f32]) -> Result<Bytes, ProtocolError>;

    /// Encodes a completed aggregate in the codec's wide result format.
    /// For f32 this is exactly [`DataSegment::encode`].
    fn encode_result(&self, seg: &DataSegment) -> Bytes;

    /// Parses header and element count without materializing values.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for truncated, misaligned, or
    /// wrong-codec payloads.
    fn decode_meta(&self, payload: &[u8]) -> Result<SegmentMeta, ProtocolError>;

    /// Fully decodes a payload (contribution or result) to f32 values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AggregationCodec::decode_meta`].
    fn decode_values(&self, payload: &[u8]) -> Result<DataSegment, ProtocolError>;

    /// A fresh switch-side accumulator for a `len`-element segment.
    fn new_acc(&self, len: usize) -> WireAcc;

    /// Accumulates one payload (narrow or wide) into `acc` in the codec's
    /// native representation — the single wire-accumulate path shared by
    /// the accelerator and (via [`AggregationCodec::decode_values`]) the
    /// worker-side assemblers, so the two cannot drift. Returns the
    /// numeric side effects of this accumulate (saturating clamps,
    /// exponent rebases) so the accelerator can surface quantization
    /// pressure in its stats and telemetry tracks.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for malformed payloads or an element
    /// count that does not match `acc`.
    fn accumulate(&self, acc: &mut WireAcc, payload: &[u8]) -> Result<AccEffects, ProtocolError>;

    /// Decodes the accumulator back to f32 sums (what the switch emits).
    fn decode_acc(&self, acc: &WireAcc) -> Vec<f32>;

    /// Worst-case absolute error of one decoded aggregate element versus
    /// the exact f32 sum, for `workers` contributions whose magnitudes are
    /// bounded by `max_abs`. Zero for lossless codecs. Top-k bounds only
    /// the *kept* elements (sparsification error is the point of the
    /// codec, not a defect of the wire format).
    fn error_bound(&self, max_abs: f32, workers: usize) -> f32;
}

/// Adds `src` into `acc` element-wise, chunked to the datapath's eight
/// parallel f32 adders (one 256-bit AXI bus beat) so the compiler emits
/// vector adds. Lanes are independent — no reassociation — so results are
/// bit-identical to the scalar loop.
pub(crate) fn accumulate_f32(acc: &mut [f32], src: &[f32]) {
    const LANES: usize = 8;
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut src_chunks = src.chunks_exact(LANES);
    for (a, s) in acc_chunks.by_ref().zip(src_chunks.by_ref()) {
        for i in 0..LANES {
            a[i] += s[i];
        }
    }
    for (a, s) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *a += s;
    }
}

/// Adds big-endian f32 wire data into `acc` element-wise, without first
/// materializing a decoded `Vec<f32>`. Element order matches
/// [`accumulate_f32`] exactly, so sums are bit-identical to the
/// decode-then-accumulate path. This is *the* big-endian f32 accumulate —
/// the accelerator and the assemblers both reach it through the codec.
pub(crate) fn accumulate_f32_be(acc: &mut [f32], bytes: &[u8]) {
    debug_assert_eq!(acc.len() * 4, bytes.len());
    for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(4)) {
        *a += f32::from_be_bytes(c.try_into().expect("4 bytes"));
    }
}

/// 2^e as f32, for exponents in the normal range.
fn exp2(e: i32) -> f32 {
    f32::from_bits((((e + 127) as u32) & 0xFF) << 23)
}

/// Smallest exponent `e` in `[EXP_MIN, EXP_MAX]` with `m / 2^e <= q_max`.
/// A bounded upward search — no `log2`, so the result is a deterministic
/// pure function of the bits of `m`.
fn scaling_exp(m: f32, q_max: f32) -> i32 {
    debug_assert!(m.is_finite() && m >= 0.0);
    let mut e = EXP_MIN;
    while e < EXP_MAX && m / exp2(e) > q_max {
        e += 1;
    }
    e
}

/// Checks every element is finite (quantized codecs reject NaN/Inf).
fn check_finite(values: &[f32]) -> Result<(), ProtocolError> {
    if values.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(ProtocolError::InvalidField("non-finite gradient value"))
    }
}

/// Largest finite magnitude in `values` (0.0 when empty).
fn max_abs(values: &[f32]) -> f32 {
    values.iter().fold(0.0f32, |m, v| m.max(v.abs()))
}

/// Writes the 8-byte `Seg` header and the 4-byte codec sub-header.
fn codec_header(buf: &mut [u8], seg: u64, count: u16, id: u8, flags: u8, param: u16) {
    let header = (seg << 16) | u64::from(count);
    buf[..SEG_HEADER_BYTES].copy_from_slice(&header.to_be_bytes());
    buf[8] = id;
    buf[9] = flags;
    buf[10..12].copy_from_slice(&param.to_be_bytes());
}

/// Parsed codec sub-header plus the raw body.
struct CodecPayload<'a> {
    seg: u64,
    count: u16,
    flags: u8,
    param: u16,
    body: &'a [u8],
}

/// Splits a non-f32 payload into headers and body, checking the codec id.
fn parse_codec_payload(id: u8, payload: &[u8]) -> Result<CodecPayload<'_>, ProtocolError> {
    if payload.len() < BODY {
        return Err(ProtocolError::Truncated {
            needed: BODY,
            got: payload.len(),
        });
    }
    let header = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
    if payload[8] != id {
        return Err(ProtocolError::InvalidField("codec id"));
    }
    Ok(CodecPayload {
        seg: header >> 16,
        count: (header & 0xFFFF) as u16,
        flags: payload[9],
        param: u16::from_be_bytes(payload[10..12].try_into().expect("2 bytes")),
        body: &payload[BODY..],
    })
}

/// Saturating add of `v` into `a`, symmetric around zero. Bumps
/// `saturations` when the clamp fires (the hardware's overflow flag).
fn sat_add(a: i32, v: i64, saturations: &mut u64) -> i32 {
    let sum = i64::from(a) + v;
    let clamped = sum.clamp(-(i32::MAX as i64), i32::MAX as i64);
    *saturations += u64::from(sum != clamped);
    clamped as i32
}

/// `m · 2^shift` with arithmetic shifting and i64 headroom; `shift` is the
/// source exponent minus the accumulator exponent.
fn align(m: i64, shift: i32) -> i64 {
    if shift >= 0 {
        m.checked_shl(shift.min(62) as u32).unwrap_or(i64::MAX)
    } else {
        m >> (-shift).min(63)
    }
}

/// Rescales an accumulator in place when a contribution arrives at a
/// larger exponent: every partial sum shifts down to the new scale.
fn rescale_acc(acc: &mut [i32], down_by: i32) {
    debug_assert!(down_by > 0);
    let s = down_by.min(31);
    for a in acc.iter_mut() {
        *a >>= s;
    }
}

// ---------------------------------------------------------------------------
// F32 — the paper's raw float format, bit-identical to the legacy wire.
// ---------------------------------------------------------------------------

/// Raw big-endian f32 (legacy layout; no sub-header).
pub struct F32Codec;

impl AggregationCodec for F32Codec {
    fn kind(&self) -> CodecKind {
        CodecKind::F32
    }

    fn elems_per_segment(&self) -> usize {
        FLOATS_PER_SEGMENT
    }

    fn contribution_bytes(&self, len: usize) -> usize {
        SEG_HEADER_BYTES + len * 4
    }

    fn encode_contribution(&self, seg: u64, values: &[f32]) -> Result<Bytes, ProtocolError> {
        Ok(crate::protocol::data::encode_segment(seg, 1, values))
    }

    fn encode_result(&self, seg: &DataSegment) -> Bytes {
        seg.encode()
    }

    fn decode_meta(&self, payload: &[u8]) -> Result<SegmentMeta, ProtocolError> {
        DataSegment::decode_meta(payload)
    }

    fn decode_values(&self, payload: &[u8]) -> Result<DataSegment, ProtocolError> {
        DataSegment::decode(payload)
    }

    fn new_acc(&self, len: usize) -> WireAcc {
        WireAcc::F32(vec![0.0; len])
    }

    fn accumulate(&self, acc: &mut WireAcc, payload: &[u8]) -> Result<AccEffects, ProtocolError> {
        let WireAcc::F32(sums) = acc else {
            return Err(ProtocolError::InvalidField("accumulator codec"));
        };
        let meta = DataSegment::decode_meta(payload)?;
        if meta.len != sums.len() {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        accumulate_f32_be(sums, &payload[SEG_HEADER_BYTES..]);
        Ok(AccEffects::default())
    }

    fn decode_acc(&self, acc: &WireAcc) -> Vec<f32> {
        match acc {
            WireAcc::F32(sums) => sums.clone(),
            _ => unreachable!("f32 accumulator"),
        }
    }

    fn error_bound(&self, _max_abs: f32, _workers: usize) -> f32 {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Fixed-point — SwitchML-style i16 mantissas with a per-packet exponent.
// ---------------------------------------------------------------------------

/// i16 mantissas scaled by a per-packet power-of-two exponent, accumulated
/// in saturating i32 at the running maximum exponent; results re-encode as
/// i32 mantissas (wide).
pub struct FixedPointCodec;

const FIXED_ID: u8 = 1;

impl FixedPointCodec {
    /// Encodes a contribution whose *stamped* exponent is offset from the
    /// scaling exponent by `stamp_bias` — zero for correct operation. A
    /// non-zero bias is the chaos harness's seeded codec bug: the switch
    /// honors the stamp, so every biased contribution lands scaled by
    /// `2^stamp_bias`, silently corrupting aggregates without tripping any
    /// wire-format check.
    pub fn encode_contribution_biased(
        &self,
        seg: u64,
        values: &[f32],
        stamp_bias: i8,
    ) -> Result<Bytes, ProtocolError> {
        check_finite(values)?;
        let e = scaling_exp(max_abs(values), FIXED_Q_MAX as f32);
        let stamped = (e + i32::from(stamp_bias)).clamp(EXP_MIN, EXP_MAX) as i8;
        let mut buf = vec![0u8; BODY + values.len() * 2];
        codec_header(
            &mut buf,
            seg,
            1,
            FIXED_ID,
            0,
            u16::from_be_bytes([stamped as u8, 0]),
        );
        let scale = exp2(e);
        for (dst, v) in buf[BODY..].chunks_exact_mut(2).zip(values) {
            let q = (v / scale)
                .round()
                .clamp(-(FIXED_Q_MAX as f32), FIXED_Q_MAX as f32) as i16;
            dst.copy_from_slice(&q.to_be_bytes());
        }
        Ok(Bytes::from(buf))
    }
}

impl AggregationCodec for FixedPointCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::FixedPoint
    }

    fn elems_per_segment(&self) -> usize {
        FIXED_ELEMS_PER_SEGMENT
    }

    fn contribution_bytes(&self, len: usize) -> usize {
        BODY + len * 2
    }

    fn encode_contribution(&self, seg: u64, values: &[f32]) -> Result<Bytes, ProtocolError> {
        self.encode_contribution_biased(seg, values, 0)
    }

    fn encode_result(&self, seg: &DataSegment) -> Bytes {
        // Results carry i32 mantissas with headroom below saturation, so
        // the f32→wide→f32 round trip costs well under the contribution
        // quantization error.
        let e = scaling_exp(max_abs(&seg.values), FIXED_WIDE_Q_MAX as f32);
        let mut buf = vec![0u8; BODY + seg.values.len() * 4];
        codec_header(
            &mut buf,
            seg.seg,
            seg.count,
            FIXED_ID,
            FLAG_WIDE,
            u16::from_be_bytes([(e as i8) as u8, 0]),
        );
        let scale = exp2(e);
        for (dst, v) in buf[BODY..].chunks_exact_mut(4).zip(&seg.values) {
            let q = f64::from(v / scale).round() as i64;
            let q = q.clamp(-FIXED_WIDE_Q_MAX, FIXED_WIDE_Q_MAX) as i32;
            dst.copy_from_slice(&q.to_be_bytes());
        }
        Bytes::from(buf)
    }

    fn decode_meta(&self, payload: &[u8]) -> Result<SegmentMeta, ProtocolError> {
        let p = parse_codec_payload(FIXED_ID, payload)?;
        let unit = if p.flags & FLAG_WIDE != 0 { 4 } else { 2 };
        if !p.body.len().is_multiple_of(unit) {
            return Err(ProtocolError::MisalignedPayload(p.body.len()));
        }
        Ok(SegmentMeta {
            seg: p.seg,
            count: p.count,
            len: p.body.len() / unit,
        })
    }

    fn decode_values(&self, payload: &[u8]) -> Result<DataSegment, ProtocolError> {
        let p = parse_codec_payload(FIXED_ID, payload)?;
        let exp = i32::from((p.param >> 8) as u8 as i8);
        let scale = exp2(exp);
        let (unit, values): (usize, Vec<f32>) = if p.flags & FLAG_WIDE != 0 {
            (
                4,
                p.body
                    .chunks_exact(4)
                    .map(|c| i32::from_be_bytes(c.try_into().expect("4 bytes")) as f32 * scale)
                    .collect(),
            )
        } else {
            (
                2,
                p.body
                    .chunks_exact(2)
                    .map(|c| f32::from(i16::from_be_bytes(c.try_into().expect("2 bytes"))) * scale)
                    .collect(),
            )
        };
        if !p.body.len().is_multiple_of(unit) {
            return Err(ProtocolError::MisalignedPayload(p.body.len()));
        }
        Ok(DataSegment {
            seg: p.seg,
            count: p.count,
            values,
        })
    }

    fn new_acc(&self, len: usize) -> WireAcc {
        WireAcc::Fixed {
            acc: vec![0; len],
            exp: 0,
            seeded: false,
        }
    }

    fn accumulate(&self, acc: &mut WireAcc, payload: &[u8]) -> Result<AccEffects, ProtocolError> {
        let WireAcc::Fixed { acc, exp, seeded } = acc else {
            return Err(ProtocolError::InvalidField("accumulator codec"));
        };
        let p = parse_codec_payload(FIXED_ID, payload)?;
        let wide = p.flags & FLAG_WIDE != 0;
        let unit = if wide { 4 } else { 2 };
        if p.body.len() != acc.len() * unit {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        let mut fx = AccEffects::default();
        let e_in = i32::from((p.param >> 8) as u8 as i8);
        if !*seeded {
            *exp = e_in as i8;
            *seeded = true;
        } else if e_in > i32::from(*exp) {
            // The switch keeps the largest exponent seen: shift existing
            // partial sums down to the coarser scale (SwitchML's exponent
            // alignment), then add at unit gain.
            rescale_acc(acc, e_in - i32::from(*exp));
            *exp = e_in as i8;
            fx.rebases += 1;
        }
        let shift = e_in - i32::from(*exp);
        if wide {
            for (a, c) in acc.iter_mut().zip(p.body.chunks_exact(4)) {
                let m = i64::from(i32::from_be_bytes(c.try_into().expect("4 bytes")));
                *a = sat_add(*a, align(m, shift), &mut fx.saturations);
            }
        } else {
            for (a, c) in acc.iter_mut().zip(p.body.chunks_exact(2)) {
                let m = i64::from(i16::from_be_bytes(c.try_into().expect("2 bytes")));
                *a = sat_add(*a, align(m, shift), &mut fx.saturations);
            }
        }
        Ok(fx)
    }

    fn decode_acc(&self, acc: &WireAcc) -> Vec<f32> {
        match acc {
            WireAcc::Fixed { acc, exp, .. } => {
                let scale = exp2(i32::from(*exp));
                acc.iter().map(|&m| m as f32 * scale).collect()
            }
            _ => unreachable!("fixed-point accumulator"),
        }
    }

    fn error_bound(&self, max_abs: f32, workers: usize) -> f32 {
        // Per contribution: rounding ≤ 0.5·2^e plus one alignment-shift ulp,
        // with 2^e < max_abs / 2^14; the wide result re-encode adds under
        // one contribution's worth. Rounded up generously — the bound backs
        // invariant tolerances, not precision claims.
        (workers as f32 + 2.0) * max_abs * exp2(-13)
    }
}

// ---------------------------------------------------------------------------
// Block floating point — one shared exponent per 32-element block.
// ---------------------------------------------------------------------------

/// i8 mantissas sharing one exponent per [`BLOCK_ELEMS`]-element block,
/// accumulated in i32 at each block's running maximum exponent; results
/// re-encode per block as i16 mantissas (wide).
pub struct BlockFloatCodec;

const BLOCK_ID: u8 = 2;

/// Bytes of one `blen`-element block in the narrow/wide encoding.
fn block_bytes(blen: usize, wide: bool) -> usize {
    1 + blen * if wide { 2 } else { 1 }
}

/// Total body bytes for `len` elements.
fn block_body_bytes(len: usize, wide: bool) -> usize {
    let full = len / BLOCK_ELEMS;
    let tail = len % BLOCK_ELEMS;
    full * block_bytes(BLOCK_ELEMS, wide) + if tail > 0 { block_bytes(tail, wide) } else { 0 }
}

impl AggregationCodec for BlockFloatCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::BlockFloat
    }

    fn elems_per_segment(&self) -> usize {
        BLOCKFLOAT_ELEMS_PER_SEGMENT
    }

    fn contribution_bytes(&self, len: usize) -> usize {
        BODY + block_body_bytes(len, false)
    }

    fn encode_contribution(&self, seg: u64, values: &[f32]) -> Result<Bytes, ProtocolError> {
        check_finite(values)?;
        let mut buf = vec![0u8; BODY + block_body_bytes(values.len(), false)];
        codec_header(&mut buf, seg, 1, BLOCK_ID, 0, values.len() as u16);
        let mut at = BODY;
        for block in values.chunks(BLOCK_ELEMS) {
            let m = max_abs(block);
            if m == 0.0 {
                buf[at] = 0; // all-zero sentinel; mantissas stay zero
            } else {
                let t = scaling_exp(m, BLOCK_Q_MAX as f32);
                buf[at] = (t + BLOCK_EXP_BIAS) as u8;
                let scale = exp2(t);
                for (dst, v) in buf[at + 1..].iter_mut().zip(block) {
                    *dst = ((v / scale)
                        .round()
                        .clamp(-(BLOCK_Q_MAX as f32), BLOCK_Q_MAX as f32)
                        as i8) as u8;
                }
            }
            at += block_bytes(block.len(), false);
        }
        Ok(Bytes::from(buf))
    }

    fn encode_result(&self, seg: &DataSegment) -> Bytes {
        let mut buf = vec![0u8; BODY + block_body_bytes(seg.values.len(), true)];
        codec_header(
            &mut buf,
            seg.seg,
            seg.count,
            BLOCK_ID,
            FLAG_WIDE,
            seg.values.len() as u16,
        );
        let mut at = BODY;
        for block in seg.values.chunks(BLOCK_ELEMS) {
            let m = max_abs(block);
            if m == 0.0 {
                buf[at] = 0;
            } else {
                let t = scaling_exp(m, BLOCK_WIDE_Q_MAX as f32);
                buf[at] = (t + BLOCK_EXP_BIAS) as u8;
                let scale = exp2(t);
                for (dst, v) in buf[at + 1..].chunks_exact_mut(2).zip(block) {
                    let q = (v / scale).round() as i64;
                    let q = q.clamp(-BLOCK_WIDE_Q_MAX, BLOCK_WIDE_Q_MAX) as i16;
                    dst.copy_from_slice(&q.to_be_bytes());
                }
            }
            at += block_bytes(block.len(), true);
        }
        Bytes::from(buf)
    }

    fn decode_meta(&self, payload: &[u8]) -> Result<SegmentMeta, ProtocolError> {
        let p = parse_codec_payload(BLOCK_ID, payload)?;
        let len = usize::from(p.param);
        if p.body.len() != block_body_bytes(len, p.flags & FLAG_WIDE != 0) {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        Ok(SegmentMeta {
            seg: p.seg,
            count: p.count,
            len,
        })
    }

    fn decode_values(&self, payload: &[u8]) -> Result<DataSegment, ProtocolError> {
        let meta = self.decode_meta(payload)?;
        let p = parse_codec_payload(BLOCK_ID, payload)?;
        let wide = p.flags & FLAG_WIDE != 0;
        let mut values = Vec::with_capacity(meta.len);
        let mut at = 0;
        let mut remaining = meta.len;
        while remaining > 0 {
            let blen = remaining.min(BLOCK_ELEMS);
            let e = p.body[at];
            let scale = if e == 0 {
                0.0 // all-zero block
            } else {
                exp2(i32::from(e) - BLOCK_EXP_BIAS)
            };
            if wide {
                for c in p.body[at + 1..at + 1 + blen * 2].chunks_exact(2) {
                    let m = i16::from_be_bytes(c.try_into().expect("2 bytes"));
                    values.push(f32::from(m) * scale);
                }
            } else {
                for &b in &p.body[at + 1..at + 1 + blen] {
                    values.push(f32::from(b as i8) * scale);
                }
            }
            at += block_bytes(blen, wide);
            remaining -= blen;
        }
        Ok(DataSegment {
            seg: p.seg,
            count: p.count,
            values,
        })
    }

    fn new_acc(&self, len: usize) -> WireAcc {
        WireAcc::Block {
            acc: vec![0; len],
            exps: vec![0; len.div_ceil(BLOCK_ELEMS)],
        }
    }

    fn accumulate(&self, acc: &mut WireAcc, payload: &[u8]) -> Result<AccEffects, ProtocolError> {
        let WireAcc::Block { acc, exps } = acc else {
            return Err(ProtocolError::InvalidField("accumulator codec"));
        };
        let p = parse_codec_payload(BLOCK_ID, payload)?;
        let wide = p.flags & FLAG_WIDE != 0;
        if usize::from(p.param) != acc.len() || p.body.len() != block_body_bytes(acc.len(), wide) {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        let mut fx = AccEffects::default();
        let mut at = 0;
        for (b, block) in acc.chunks_mut(BLOCK_ELEMS).enumerate() {
            let e_byte = p.body[at];
            let blen = block.len();
            if e_byte != 0 {
                let e_in = i32::from(e_byte) - BLOCK_EXP_BIAS;
                let e_slot = if exps[b] == 0 {
                    exps[b] = e_byte;
                    e_in
                } else {
                    let cur = i32::from(exps[b]) - BLOCK_EXP_BIAS;
                    if e_in > cur {
                        rescale_acc(block, e_in - cur);
                        exps[b] = e_byte;
                        fx.rebases += 1;
                        e_in
                    } else {
                        cur
                    }
                };
                let shift = e_in - e_slot;
                if wide {
                    for (a, c) in block
                        .iter_mut()
                        .zip(p.body[at + 1..at + 1 + blen * 2].chunks_exact(2))
                    {
                        let m = i64::from(i16::from_be_bytes(c.try_into().expect("2 bytes")));
                        *a = sat_add(*a, align(m, shift), &mut fx.saturations);
                    }
                } else {
                    for (a, &byte) in block.iter_mut().zip(&p.body[at + 1..at + 1 + blen]) {
                        *a = sat_add(*a, align(i64::from(byte as i8), shift), &mut fx.saturations);
                    }
                }
            }
            at += block_bytes(blen, wide);
        }
        Ok(fx)
    }

    fn decode_acc(&self, acc: &WireAcc) -> Vec<f32> {
        match acc {
            WireAcc::Block { acc, exps } => acc
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    let e = exps[i / BLOCK_ELEMS];
                    if e == 0 {
                        0.0
                    } else {
                        m as f32 * exp2(i32::from(e) - BLOCK_EXP_BIAS)
                    }
                })
                .collect(),
            _ => unreachable!("block-float accumulator"),
        }
    }

    fn error_bound(&self, max_abs: f32, workers: usize) -> f32 {
        // 7-bit mantissas: rounding ≤ 0.5·2^t with 2^t < block_max / 2^6,
        // plus alignment and the i16 result re-encode.
        (workers as f32 + 2.0) * max_abs * exp2(-5)
    }
}

// ---------------------------------------------------------------------------
// Top-k — magnitude sparsification with a dense fallback.
// ---------------------------------------------------------------------------

/// Sparse (u16 index, f32 value) pairs for the top `1/TOPK_DIVISOR` of a
/// segment by magnitude; dense raw f32 when the selection density makes
/// sparse encoding larger. Results are always dense f32.
pub struct TopKCodec;

const TOPK_ID: u8 = 3;

/// Indices of the top `k` elements of `values` by magnitude, ties broken
/// by ascending index, returned in ascending index order — a deterministic
/// pure function of the values.
pub fn topk_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut by_mag: Vec<usize> = (0..values.len()).filter(|&i| values[i] != 0.0).collect();
    by_mag.sort_by(|&a, &b| {
        values[b]
            .abs()
            .partial_cmp(&values[a].abs())
            .expect("finite values")
            .then(a.cmp(&b))
    });
    by_mag.truncate(k);
    by_mag.sort_unstable();
    by_mag
}

impl AggregationCodec for TopKCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::TopK
    }

    fn elems_per_segment(&self) -> usize {
        TOPK_ELEMS_PER_SEGMENT
    }

    fn contribution_bytes(&self, len: usize) -> usize {
        BODY + len.div_ceil(TOPK_DIVISOR).max(1) * 6
    }

    fn encode_contribution(&self, seg: u64, values: &[f32]) -> Result<Bytes, ProtocolError> {
        check_finite(values)?;
        let k = (values.len() / TOPK_DIVISOR).max(1);
        let keep = topk_indices(values, k);
        // Density crossover: a sparse entry costs 6 bytes against 4 dense,
        // so past 2/3 density the dense fallback is strictly smaller.
        if keep.len() * 6 >= values.len() * 4 {
            let mut buf = vec![0u8; BODY + values.len() * 4];
            codec_header(&mut buf, seg, 1, TOPK_ID, 0, values.len() as u16);
            for (dst, v) in buf[BODY..].chunks_exact_mut(4).zip(values) {
                dst.copy_from_slice(&v.to_be_bytes());
            }
            return Ok(Bytes::from(buf));
        }
        let mut buf = vec![0u8; BODY + keep.len() * 6];
        codec_header(&mut buf, seg, 1, TOPK_ID, FLAG_SPARSE, values.len() as u16);
        for (dst, &i) in buf[BODY..].chunks_exact_mut(6).zip(&keep) {
            dst[..2].copy_from_slice(&(i as u16).to_be_bytes());
            dst[2..].copy_from_slice(&values[i].to_be_bytes());
        }
        Ok(Bytes::from(buf))
    }

    fn encode_result(&self, seg: &DataSegment) -> Bytes {
        // Aggregates of H sparse contributions are nearly always past the
        // density crossover, so results ship dense.
        let mut buf = vec![0u8; BODY + seg.values.len() * 4];
        codec_header(
            &mut buf,
            seg.seg,
            seg.count,
            TOPK_ID,
            FLAG_WIDE,
            seg.values.len() as u16,
        );
        for (dst, v) in buf[BODY..].chunks_exact_mut(4).zip(&seg.values) {
            dst.copy_from_slice(&v.to_be_bytes());
        }
        Bytes::from(buf)
    }

    fn decode_meta(&self, payload: &[u8]) -> Result<SegmentMeta, ProtocolError> {
        let p = parse_codec_payload(TOPK_ID, payload)?;
        let len = usize::from(p.param);
        if p.flags & FLAG_SPARSE != 0 {
            if !p.body.len().is_multiple_of(6) {
                return Err(ProtocolError::MisalignedPayload(p.body.len()));
            }
            if p.body.len() / 6 > len {
                return Err(ProtocolError::InvalidField("sparse entry count"));
            }
        } else if p.body.len() != len * 4 {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        Ok(SegmentMeta {
            seg: p.seg,
            count: p.count,
            len,
        })
    }

    fn decode_values(&self, payload: &[u8]) -> Result<DataSegment, ProtocolError> {
        let meta = self.decode_meta(payload)?;
        let p = parse_codec_payload(TOPK_ID, payload)?;
        let values = if p.flags & FLAG_SPARSE != 0 {
            let mut out = vec![0.0f32; meta.len];
            for entry in p.body.chunks_exact(6) {
                let i = usize::from(u16::from_be_bytes(entry[..2].try_into().expect("2 bytes")));
                if i >= out.len() {
                    return Err(ProtocolError::InvalidField("sparse index"));
                }
                out[i] = f32::from_be_bytes(entry[2..].try_into().expect("4 bytes"));
            }
            out
        } else {
            p.body
                .chunks_exact(4)
                .map(|c| f32::from_be_bytes(c.try_into().expect("4 bytes")))
                .collect()
        };
        Ok(DataSegment {
            seg: p.seg,
            count: p.count,
            values,
        })
    }

    fn new_acc(&self, len: usize) -> WireAcc {
        WireAcc::TopK(vec![0.0; len])
    }

    fn accumulate(&self, acc: &mut WireAcc, payload: &[u8]) -> Result<AccEffects, ProtocolError> {
        let WireAcc::TopK(sums) = acc else {
            return Err(ProtocolError::InvalidField("accumulator codec"));
        };
        let p = parse_codec_payload(TOPK_ID, payload)?;
        if usize::from(p.param) != sums.len() {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        if p.flags & FLAG_SPARSE != 0 {
            if !p.body.len().is_multiple_of(6) {
                return Err(ProtocolError::MisalignedPayload(p.body.len()));
            }
            // Scatter-add: untouched indices contribute zero, exactly as if
            // the worker had sent an explicit zero there.
            for entry in p.body.chunks_exact(6) {
                let i = usize::from(u16::from_be_bytes(entry[..2].try_into().expect("2 bytes")));
                if i >= sums.len() {
                    return Err(ProtocolError::InvalidField("sparse index"));
                }
                sums[i] += f32::from_be_bytes(entry[2..].try_into().expect("4 bytes"));
            }
        } else {
            if p.body.len() != sums.len() * 4 {
                return Err(ProtocolError::InvalidField("payload length"));
            }
            accumulate_f32_be(sums, p.body);
        }
        Ok(AccEffects::default())
    }

    fn decode_acc(&self, acc: &WireAcc) -> Vec<f32> {
        match acc {
            WireAcc::TopK(sums) => sums.clone(),
            _ => unreachable!("top-k accumulator"),
        }
    }

    fn error_bound(&self, _max_abs: f32, _workers: usize) -> f32 {
        // Kept coordinates transfer exact f32 values; the sparsification
        // loss on dropped coordinates is the codec's design point, not a
        // wire error.
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 - n as f32 / 2.0) * 0.125)
            .collect()
    }

    #[test]
    fn capacities_fit_the_mtu_both_ways() {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            let n = codec.elems_per_segment();
            let contrib = codec
                .encode_contribution(0, &ramp(n))
                .expect("finite values encode");
            assert!(
                contrib.len() <= MAX_UDP_PAYLOAD,
                "{kind}: contribution {} bytes",
                contrib.len()
            );
            let result = codec.encode_result(&DataSegment {
                seg: 0,
                count: 9,
                values: ramp(n),
            });
            assert!(
                result.len() <= MAX_UDP_PAYLOAD,
                "{kind}: result {} bytes",
                result.len()
            );
            assert!(
                codec.contribution_bytes(n) <= MAX_UDP_PAYLOAD,
                "{kind}: sizing model exceeds MTU"
            );
        }
        assert_eq!(FIXED_ELEMS_PER_SEGMENT, 365);
        assert_eq!(BLOCKFLOAT_ELEMS_PER_SEGMENT, 704);
        assert_eq!(TOPK_ELEMS_PER_SEGMENT, 365);
    }

    #[test]
    fn acc_bytes_matches_a_real_accumulator() {
        for kind in CodecKind::ALL {
            for len in [1, 31, 32, 33, 365, 366, 704] {
                assert_eq!(
                    kind.acc_bytes(len),
                    kind.codec().new_acc(len).resident_bytes(),
                    "{kind} at len {len}"
                );
            }
        }
    }

    #[test]
    fn labels_parse_round_trip() {
        for kind in CodecKind::ALL {
            assert_eq!(kind.label().parse::<CodecKind>().unwrap(), kind);
        }
        assert!("float64".parse::<CodecKind>().is_err());
    }

    #[test]
    fn f32_wire_layout_is_the_legacy_layout() {
        let values = ramp(10);
        let codec = CodecKind::F32.codec();
        let payload = codec.encode_contribution(7, &values).unwrap();
        assert_eq!(
            payload,
            crate::protocol::data::encode_segment(7, 1, &values),
            "f32 contributions must be byte-identical to the legacy encoder"
        );
        let seg = DataSegment {
            seg: 7,
            count: 3,
            values,
        };
        assert_eq!(codec.encode_result(&seg), seg.encode());
    }

    #[test]
    fn meta_and_values_round_trip_for_every_codec() {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            let values = ramp(77);
            let payload = codec.encode_contribution(5, &values).unwrap();
            let meta = codec.decode_meta(&payload).unwrap();
            assert_eq!(meta.seg, 5, "{kind}");
            assert_eq!(meta.count, 1, "{kind}");
            assert_eq!(meta.len, 77, "{kind}");
            let decoded = codec.decode_values(&payload).unwrap();
            assert_eq!(decoded.values.len(), 77, "{kind}");
            let bound = codec.error_bound(max_abs(&values), 1).max(1e-6);
            for (i, (&d, &v)) in decoded.values.iter().zip(&values).enumerate() {
                if kind == CodecKind::TopK && d == 0.0 {
                    continue; // dropped by sparsification
                }
                assert!(
                    (d - v).abs() <= bound,
                    "{kind}: element {i}: {d} vs {v} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn exponent_stamp_bias_scales_decoded_values() {
        let codec = FixedPointCodec;
        let values = vec![1.0f32, -2.0, 0.5];
        let honest = codec.decode_values(&codec.encode_contribution_biased(0, &values, 0).unwrap());
        let biased = codec.decode_values(&codec.encode_contribution_biased(0, &values, 1).unwrap());
        let (honest, biased) = (honest.unwrap(), biased.unwrap());
        for (h, b) in honest.values.iter().zip(&biased.values) {
            assert!(
                (b - 2.0 * h).abs() <= 1e-6,
                "bias 1 must double: {h} vs {b}"
            );
        }
    }

    #[test]
    fn truncated_and_wrong_id_payloads_rejected() {
        let payload = FixedPointCodec.encode_contribution(0, &[1.0, 2.0]).unwrap();
        assert!(matches!(
            FixedPointCodec.decode_meta(&payload[..6]),
            Err(ProtocolError::Truncated { .. })
        ));
        assert_eq!(
            BlockFloatCodec.decode_meta(&payload),
            Err(ProtocolError::InvalidField("codec id"))
        );
    }
}
