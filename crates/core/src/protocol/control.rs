//! Control messages (paper §3.2, Table 2).
//!
//! A control packet's UDP payload is a 1-byte action code followed by an
//! optional value whose meaning depends on the action.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::ProtocolError;

/// Action codes on the wire.
mod code {
    pub const JOIN: u8 = 0x01;
    pub const LEAVE: u8 = 0x02;
    pub const RESET: u8 = 0x03;
    pub const SET_H: u8 = 0x04;
    pub const FBCAST: u8 = 0x05;
    pub const HELP: u8 = 0x06;
    pub const HALT: u8 = 0x07;
    pub const ACK: u8 = 0x08;
}

/// A control-plane message (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// Join the training job. The value carries training-model metadata:
    /// the worker's chosen id and the gradient-vector length in elements.
    Join {
        /// Worker-chosen identifier.
        worker_id: u32,
        /// Gradient vector length in f32 elements.
        grad_len: u32,
    },
    /// Leave the training job.
    Leave {
        /// Identifier of the departing worker.
        worker_id: u32,
    },
    /// Clear accelerator buffers and counters on the switch.
    Reset,
    /// Set the aggregation threshold `H` on the switch.
    SetH {
        /// Number of gradient vectors to aggregate before broadcasting.
        h: u32,
    },
    /// Force broadcasting a partially aggregated segment on the switch.
    FBcast {
        /// Segment index to flush.
        seg: u64,
    },
    /// Request (re)transmission of a lost result packet for a worker.
    Help {
        /// Segment index whose aggregated result was lost.
        seg: u64,
    },
    /// Suspend the training job on all workers.
    Halt,
    /// Confirm the success or failure of a prior action.
    Ack {
        /// Action code being acknowledged.
        of: u8,
        /// Whether the action succeeded.
        ok: bool,
    },
}

impl ControlMessage {
    /// The message's action code.
    pub fn action_code(&self) -> u8 {
        match self {
            ControlMessage::Join { .. } => code::JOIN,
            ControlMessage::Leave { .. } => code::LEAVE,
            ControlMessage::Reset => code::RESET,
            ControlMessage::SetH { .. } => code::SET_H,
            ControlMessage::FBcast { .. } => code::FBCAST,
            ControlMessage::Help { .. } => code::HELP,
            ControlMessage::Halt => code::HALT,
            ControlMessage::Ack { .. } => code::ACK,
        }
    }

    /// Serializes to a UDP payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(self.action_code());
        match self {
            ControlMessage::Join {
                worker_id,
                grad_len,
            } => {
                buf.put_u32(*worker_id);
                buf.put_u32(*grad_len);
            }
            ControlMessage::Leave { worker_id } => buf.put_u32(*worker_id),
            ControlMessage::Reset | ControlMessage::Halt => {}
            ControlMessage::SetH { h } => buf.put_u32(*h),
            ControlMessage::FBcast { seg } | ControlMessage::Help { seg } => buf.put_u64(*seg),
            ControlMessage::Ack { of, ok } => {
                buf.put_u8(*of);
                buf.put_u8(u8::from(*ok));
            }
        }
        buf.freeze()
    }

    /// Parses a UDP payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation or an unknown action code.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (&action, rest) = payload
            .split_first()
            .ok_or(ProtocolError::Truncated { needed: 1, got: 0 })?;
        let need = |n: usize| {
            if rest.len() < n {
                Err(ProtocolError::Truncated {
                    needed: n + 1,
                    got: payload.len(),
                })
            } else {
                Ok(())
            }
        };
        let u32_at = |i: usize| u32::from_be_bytes(rest[i..i + 4].try_into().expect("4 bytes"));
        let u64_at = |i: usize| u64::from_be_bytes(rest[i..i + 8].try_into().expect("8 bytes"));
        match action {
            code::JOIN => {
                need(8)?;
                Ok(ControlMessage::Join {
                    worker_id: u32_at(0),
                    grad_len: u32_at(4),
                })
            }
            code::LEAVE => {
                need(4)?;
                Ok(ControlMessage::Leave {
                    worker_id: u32_at(0),
                })
            }
            code::RESET => Ok(ControlMessage::Reset),
            code::SET_H => {
                need(4)?;
                Ok(ControlMessage::SetH { h: u32_at(0) })
            }
            code::FBCAST => {
                need(8)?;
                Ok(ControlMessage::FBcast { seg: u64_at(0) })
            }
            code::HELP => {
                need(8)?;
                Ok(ControlMessage::Help { seg: u64_at(0) })
            }
            code::HALT => Ok(ControlMessage::Halt),
            code::ACK => {
                need(2)?;
                Ok(ControlMessage::Ack {
                    of: rest[0],
                    ok: rest[1] != 0,
                })
            }
            other => Err(ProtocolError::UnknownAction(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<ControlMessage> {
        vec![
            ControlMessage::Join {
                worker_id: 3,
                grad_len: 1_680_343,
            },
            ControlMessage::Leave { worker_id: 3 },
            ControlMessage::Reset,
            ControlMessage::SetH { h: 4 },
            ControlMessage::FBcast { seg: 0xDEAD_BEEF },
            ControlMessage::Help { seg: 7 },
            ControlMessage::Halt,
            ControlMessage::Ack { of: 0x04, ok: true },
            ControlMessage::Ack {
                of: 0x01,
                ok: false,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for msg in all_messages() {
            let decoded = ControlMessage::decode(&msg.encode()).expect("decodes");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn action_codes_are_unique() {
        let mut codes: Vec<u8> = all_messages().iter().map(|m| m.action_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 8);
    }

    #[test]
    fn truncated_payloads_error() {
        assert_eq!(
            ControlMessage::decode(&[]),
            Err(ProtocolError::Truncated { needed: 1, got: 0 })
        );
        // Join needs 8 bytes of value.
        let err = ControlMessage::decode(&[0x01, 0, 0]).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { .. }));
    }

    #[test]
    fn unknown_action_errors() {
        assert_eq!(
            ControlMessage::decode(&[0x7F]),
            Err(ProtocolError::UnknownAction(0x7F))
        );
    }

    #[test]
    fn payloads_are_compact() {
        // Control messages must fit trivially in one frame.
        for msg in all_messages() {
            assert!(msg.encode().len() <= 9, "{msg:?}");
        }
    }
}
