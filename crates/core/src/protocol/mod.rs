//! The iSwitch network protocol (paper §3.2): ToS tagging, control
//! messages, and gradient data segmentation.

pub(crate) mod codec;
mod control;
pub(crate) mod data;
mod quant;
mod tos;

pub use codec::{
    topk_indices, AccEffects, AggregationCodec, BlockFloatCodec, CodecKind, F32Codec,
    FixedPointCodec, TopKCodec, WireAcc, BLOCKFLOAT_ELEMS_PER_SEGMENT, BLOCK_ELEMS,
    CODEC_HEADER_BYTES, FIXED_ELEMS_PER_SEGMENT, TOPK_DIVISOR, TOPK_ELEMS_PER_SEGMENT,
};
pub use control::ControlMessage;
pub(crate) use data::encode_segment;
pub use data::{
    decode_seg_field, num_segments, seg_index, seg_round, segment_gradient, segment_gradient_round,
    tag_round, DataSegment, GradientAssembler, RoundAssembler, RoundInsert, SegmentMeta,
    FLOATS_PER_SEGMENT, MAX_SEG_INDEX, ROUND_SHIFT, SEG_HEADER_BYTES,
};
pub use quant::{
    num_quant_segments, quantize_gradient, QuantAccelerator, QuantConfig, QuantSegment,
    INTS_PER_SEGMENT,
};
pub use tos::{dscp, is_iswitch_tos, ISWITCH_UDP_PORT, TOS_CONTROL, TOS_DATA};
