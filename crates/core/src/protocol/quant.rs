//! INT16 gradient quantization — an extension in the direction of the
//! paper's related work (GradiVeQ, §7: bandwidth-efficient gradient
//! aggregation), adapted to in-switch constraints.
//!
//! Floating-point adders are the accelerator's scarcest datapath resource
//! (17 DSP slices in §3.5); linear INT16 quantization halves the bytes on
//! the wire *and* replaces the FP adders with integer accumulators. A
//! **fixed, symmetric scale** is shared by every worker (`clip / 32767`),
//! so the switch can sum raw integers without rescaling — exactly the kind
//! of scheme that fits a switch ASIC. The error analysis lives in the
//! tests: the absolute quantization error per element is at most one
//! quantization step.

use bytes::{BufMut, Bytes, BytesMut};
use iswitch_netsim::MAX_UDP_PAYLOAD;

use crate::error::ProtocolError;
use crate::protocol::data::SEG_HEADER_BYTES;

/// i16 elements per full quantized segment: twice the f32 density. The
/// payload layout is `seg header (8) | scale (4) | i16 data`.
pub const INTS_PER_SEGMENT: usize = (MAX_UDP_PAYLOAD - SEG_HEADER_BYTES - 4) / 2;

/// Shared quantization parameters. Every worker and switch in a job must
/// agree on the clip range (distributed via `Join` metadata in a full
/// deployment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Symmetric clipping range: values outside `[-clip, clip]` saturate.
    pub clip: f32,
}

impl QuantConfig {
    /// A config with the given clip range.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not positive and finite.
    pub fn new(clip: f32) -> Self {
        assert!(
            clip > 0.0 && clip.is_finite(),
            "clip must be positive and finite"
        );
        QuantConfig { clip }
    }

    /// The value of one quantization step.
    pub fn step(&self) -> f32 {
        self.clip / f32::from(i16::MAX)
    }

    /// Quantizes one value (saturating).
    pub fn quantize(&self, x: f32) -> i16 {
        let q = (x / self.step()).round();
        q.clamp(f32::from(i16::MIN + 1), f32::from(i16::MAX)) as i16
    }

    /// Dequantizes one value.
    pub fn dequantize(&self, q: i16) -> f32 {
        f32::from(q) * self.step()
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        // Gradients are clipped to unit L2 norm upstream, so per-element
        // magnitudes rarely exceed 1.
        QuantConfig { clip: 1.0 }
    }
}

/// One quantized gradient segment. The integer accumulator in the switch
/// sums `values` of same-`seg` packets directly; `count` tracks
/// contributors just like the f32 path.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSegment {
    /// Segment index.
    pub seg: u64,
    /// Contributor count.
    pub count: u16,
    /// Shared quantization step (must match across contributors).
    pub step: f32,
    /// Quantized values. Aggregated results may exceed i16 range, so the
    /// accumulator widens to i32 on the wire's behalf.
    pub values: Vec<i32>,
}

impl QuantSegment {
    /// Serializes to a UDP payload. Worker contributions (all values in
    /// i16 range) use 2 bytes per element.
    ///
    /// # Panics
    ///
    /// Panics if a value exceeds the i16 range (contributions must be
    /// freshly quantized; use the f32 path to transport wide aggregates)
    /// or the segment exceeds the MTU budget.
    pub fn encode(&self) -> Bytes {
        assert!(
            self.values.len() <= INTS_PER_SEGMENT,
            "quantized segment of {} elements exceeds the MTU budget of {}",
            self.values.len(),
            INTS_PER_SEGMENT
        );
        let mut buf = BytesMut::with_capacity(SEG_HEADER_BYTES + 4 + self.values.len() * 2);
        buf.put_u64((self.seg << 16) | u64::from(self.count));
        buf.put_f32(self.step);
        for &v in &self.values {
            let narrow = i16::try_from(v).expect("worker contributions stay within i16 range");
            buf.put_i16(narrow);
        }
        buf.freeze()
    }

    /// Parses a UDP payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation or misalignment.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        if payload.len() < SEG_HEADER_BYTES + 4 {
            return Err(ProtocolError::Truncated {
                needed: SEG_HEADER_BYTES + 4,
                got: payload.len(),
            });
        }
        let header = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        let step = f32::from_be_bytes(payload[8..12].try_into().expect("4 bytes"));
        let data = &payload[12..];
        if !data.len().is_multiple_of(2) {
            return Err(ProtocolError::MisalignedPayload(data.len()));
        }
        let values = data
            .chunks_exact(2)
            .map(|c| i32::from(i16::from_be_bytes(c.try_into().expect("2 bytes"))))
            .collect();
        Ok(QuantSegment {
            seg: header >> 16,
            count: (header & 0xFFFF) as u16,
            step,
            values,
        })
    }

    /// Dequantizes into f32 values.
    pub fn to_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32 * self.step).collect()
    }
}

/// Quantizes a gradient into wire segments under `cfg` (count = 1).
pub fn quantize_gradient(grad: &[f32], cfg: QuantConfig) -> Vec<QuantSegment> {
    grad.chunks(INTS_PER_SEGMENT)
        .enumerate()
        .map(|(i, chunk)| QuantSegment {
            seg: i as u64,
            count: 1,
            step: cfg.step(),
            values: chunk.iter().map(|&x| i32::from(cfg.quantize(x))).collect(),
        })
        .collect()
}

/// Number of quantized segments for a gradient of `len` elements.
pub fn num_quant_segments(len: usize) -> usize {
    len.div_ceil(INTS_PER_SEGMENT)
}

/// The integer aggregation engine: the quantized counterpart of the f32
/// [`crate::Accelerator`] datapath. Sums i32 accumulators per segment and
/// emits when `threshold` contributions arrived.
#[derive(Debug, Clone)]
pub struct QuantAccelerator {
    threshold: u16,
    num_segments: usize,
    step: Option<f32>,
    buffers: std::collections::HashMap<usize, Vec<i32>>,
    counters: Vec<u16>,
    worker_counts: Vec<u16>,
}

impl QuantAccelerator {
    /// An integer aggregator for `num_segments` segments at threshold `H`.
    ///
    /// # Panics
    ///
    /// Panics on a zero threshold or segment count.
    pub fn new(num_segments: usize, threshold: u16) -> Self {
        assert!(threshold > 0, "aggregation threshold H must be positive");
        assert!(num_segments > 0, "at least one segment required");
        QuantAccelerator {
            threshold,
            num_segments,
            step: None,
            buffers: std::collections::HashMap::new(),
            counters: vec![0; num_segments],
            worker_counts: vec![0; num_segments],
        }
    }

    /// Ingests a quantized contribution; returns the completed aggregate
    /// (with i32 values that may exceed i16 range) when `H` is reached.
    ///
    /// # Panics
    ///
    /// Panics if contributors disagree on the quantization step — the
    /// shared-scale contract this scheme depends on.
    pub fn ingest(&mut self, seg: &QuantSegment) -> Option<QuantSegment> {
        let idx = seg.seg as usize;
        assert!(idx < self.num_segments, "segment index {idx} out of range");
        match self.step {
            None => self.step = Some(seg.step),
            Some(step) => assert!(
                (step - seg.step).abs() < f32::EPSILON,
                "contributors disagree on the quantization step"
            ),
        }
        let buffer = self
            .buffers
            .entry(idx)
            .or_insert_with(|| vec![0i32; seg.values.len()]);
        assert_eq!(buffer.len(), seg.values.len(), "segment length changed");
        for (acc, v) in buffer.iter_mut().zip(&seg.values) {
            *acc = acc.saturating_add(*v);
        }
        self.counters[idx] += 1;
        self.worker_counts[idx] = self.worker_counts[idx].saturating_add(seg.count.max(1));
        if self.counters[idx] >= self.threshold {
            let values = self.buffers.remove(&idx).expect("resident");
            let count = self.worker_counts[idx];
            self.counters[idx] = 0;
            self.worker_counts[idx] = 0;
            Some(QuantSegment {
                seg: idx as u64,
                count,
                step: self.step.expect("step fixed by first ingest"),
                values,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_within_one_step() {
        let cfg = QuantConfig::default();
        for x in [-0.9999f32, -0.5, -1e-4, 0.0, 3e-3, 0.77, 0.9999] {
            let back = cfg.dequantize(cfg.quantize(x));
            assert!((back - x).abs() <= cfg.step(), "{x} -> {back}");
        }
    }

    #[test]
    fn quantize_saturates_at_clip() {
        let cfg = QuantConfig::new(0.5);
        assert_eq!(cfg.quantize(10.0), i16::MAX);
        assert_eq!(cfg.quantize(-10.0), i16::MIN + 1);
    }

    #[test]
    fn wire_round_trips() {
        let cfg = QuantConfig::default();
        let grad: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin() * 0.8).collect();
        for seg in quantize_gradient(&grad, cfg) {
            let decoded = QuantSegment::decode(&seg.encode()).expect("decodes");
            assert_eq!(decoded, seg);
        }
    }

    #[test]
    fn packs_twice_the_density_of_f32() {
        assert!(INTS_PER_SEGMENT >= 2 * crate::protocol::FLOATS_PER_SEGMENT - 4);
        let grad = vec![0.1f32; 10_000];
        let q = quantize_gradient(&grad, QuantConfig::default());
        let f = crate::protocol::segment_gradient(&grad);
        assert!(
            q.len() < f.len(),
            "quantized {} vs f32 {}",
            q.len(),
            f.len()
        );
    }

    #[test]
    fn integer_aggregation_matches_f32_sum_within_error_bound() {
        let cfg = QuantConfig::default();
        let n = 4;
        let grads: Vec<Vec<f32>> = (0..n)
            .map(|w| {
                (0..800)
                    .map(|i| ((w * 800 + i) as f32 * 0.013).sin() * 0.6)
                    .collect()
            })
            .collect();
        let mut expect = vec![0.0f32; 800];
        for g in &grads {
            for (e, v) in expect.iter_mut().zip(g) {
                *e += v;
            }
        }
        let mut accel = QuantAccelerator::new(num_quant_segments(800), n as u16);
        let mut got = vec![0.0f32; 800];
        for g in &grads {
            for seg in quantize_gradient(g, cfg) {
                if let Some(done) = accel.ingest(&seg) {
                    let offset = done.seg as usize * INTS_PER_SEGMENT;
                    for (i, v) in done.to_f32().into_iter().enumerate() {
                        got[offset + i] = v;
                    }
                }
            }
        }
        // Error bound: each contribution adds at most step/2 rounding error.
        let bound = cfg.step() * n as f32;
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() <= bound, "sum {a} vs {b} (bound {bound})");
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the quantization step")]
    fn mismatched_scales_rejected() {
        let mut accel = QuantAccelerator::new(1, 2);
        let a = quantize_gradient(&[0.5], QuantConfig::new(1.0)).remove(0);
        let b = quantize_gradient(&[0.5], QuantConfig::new(2.0)).remove(0);
        accel.ingest(&a);
        accel.ingest(&b);
    }

    #[test]
    fn aggregate_counts_accumulate() {
        let cfg = QuantConfig::default();
        let mut accel = QuantAccelerator::new(1, 3);
        let seg = quantize_gradient(&[0.25], cfg).remove(0);
        assert!(accel.ingest(&seg).is_none());
        assert!(accel.ingest(&seg).is_none());
        let done = accel.ingest(&seg).expect("third completes");
        assert_eq!(done.count, 3);
        assert!((done.to_f32()[0] - 0.75).abs() < 3.0 * cfg.step());
    }
}
