//! ToS tagging of iSwitch packets (paper §3.2, Fig. 5).
//!
//! The iSwitch protocol rides on ordinary UDP/IP; packets belonging to the
//! in-switch training job are identified by reserved values of the IP
//! Type-of-Service byte, so the switch's input arbiter can divert them to
//! the accelerator without touching regular traffic.

/// Reserved ToS value tagging **control** packets (Fig. 5a).
pub const TOS_CONTROL: u8 = 0xB8;

/// Reserved ToS value tagging **data** (gradient) packets (Fig. 5b).
pub const TOS_DATA: u8 = 0xBC;

/// The UDP port used by the training job (cf. the membership table in
/// Fig. 9, which registers workers at port 9999).
pub const ISWITCH_UDP_PORT: u16 = 9999;

/// Whether a ToS value belongs to the iSwitch protocol at all.
pub fn is_iswitch_tos(tos: u8) -> bool {
    tos == TOS_CONTROL || tos == TOS_DATA
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_values_are_distinct_and_recognized() {
        assert_ne!(TOS_CONTROL, TOS_DATA);
        assert!(is_iswitch_tos(TOS_CONTROL));
        assert!(is_iswitch_tos(TOS_DATA));
        assert!(!is_iswitch_tos(0));
        assert!(!is_iswitch_tos(0x10));
    }
}
