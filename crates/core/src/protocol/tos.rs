//! ToS tagging of iSwitch packets (paper §3.2, Fig. 5).
//!
//! The iSwitch protocol rides on ordinary UDP/IP; packets belonging to the
//! in-switch training job are identified by reserved values of the IP
//! Type-of-Service byte, so the switch's input arbiter can divert them to
//! the accelerator without touching regular traffic.

/// Reserved ToS value tagging **control** packets (Fig. 5a).
pub const TOS_CONTROL: u8 = 0xB8;

/// Reserved ToS value tagging **data** (gradient) packets (Fig. 5b).
pub const TOS_DATA: u8 = 0xBC;

/// The UDP port used by the training job (cf. the membership table in
/// Fig. 9, which registers workers at port 9999).
pub const ISWITCH_UDP_PORT: u16 = 9999;

/// The DiffServ bits of a ToS byte: the low two ECN bits masked off.
///
/// Egress queues rewrite the ECN field in flight (congestion marking), so
/// every protocol classification on ToS must compare through this — both
/// reserved iSwitch values keep their ECN bits clear, making the tags
/// ECN-transparent.
pub fn dscp(tos: u8) -> u8 {
    tos & !iswitch_netsim::ECN_MASK
}

/// Whether a ToS value belongs to the iSwitch protocol at all, ignoring
/// in-flight ECN marks.
pub fn is_iswitch_tos(tos: u8) -> bool {
    dscp(tos) == TOS_CONTROL || dscp(tos) == TOS_DATA
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_values_are_distinct_and_recognized() {
        assert_ne!(TOS_CONTROL, TOS_DATA);
        assert!(is_iswitch_tos(TOS_CONTROL));
        assert!(is_iswitch_tos(TOS_DATA));
        assert!(!is_iswitch_tos(0));
        assert!(!is_iswitch_tos(0x10));
    }

    #[test]
    fn classification_is_ecn_transparent() {
        // Both reserved values keep their ECN bits clear, so a CE-marked
        // packet still classifies as the same protocol tag.
        assert_eq!(TOS_CONTROL & iswitch_netsim::ECN_MASK, 0);
        assert_eq!(TOS_DATA & iswitch_netsim::ECN_MASK, 0);
        assert!(is_iswitch_tos(TOS_DATA | iswitch_netsim::ECN_CE));
        assert_eq!(dscp(TOS_DATA | iswitch_netsim::ECN_CE), TOS_DATA);
        assert_eq!(dscp(0x03), 0);
    }
}
