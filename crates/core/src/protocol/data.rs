//! Data (gradient) packets and vector segmentation (paper §3.2, Fig. 5b).
//!
//! A gradient vector is split into MTU-sized **segments**; the payload of a
//! data packet is an 8-byte `Seg` field followed by raw f32 gradient data
//! ("all gradient data are transmitted and computed in a raw float-point
//! format"). Packets with the same `Seg` number are summed element-wise by
//! the accelerator.
//!
//! Wire refinement kept from the paper's format: the 8-byte `Seg` field is
//! split into a 48-bit segment index and a 16-bit **contributor count**.
//! Worker contributions carry count = 1; aggregated results carry the
//! number of gradient vectors summed in, which lets workers average
//! correctly when a partial aggregate is force-broadcast (`FBcast`).

use bytes::Bytes;
use iswitch_netsim::MAX_UDP_PAYLOAD;

use crate::error::ProtocolError;
use crate::protocol::codec::CodecKind;

/// Bytes of the `Seg` header at the start of every data payload.
pub const SEG_HEADER_BYTES: usize = 8;

/// f32 elements per full segment: the largest count whose payload fits a
/// maximum Ethernet frame. With 1,472 payload bytes this is 366.
pub const FLOATS_PER_SEGMENT: usize = (MAX_UDP_PAYLOAD - SEG_HEADER_BYTES) / 4;

/// Largest representable segment index (48 bits).
pub const MAX_SEG_INDEX: u64 = (1 << 48) - 1;

/// Bit position of the round tag inside the 48-bit segment field.
///
/// Aggregation rounds need an identity: without one, a round left partial
/// by a lost contribution is silently completed by the *next* iteration's
/// packets, permanently phase-shifting that segment (and a re-broadcast of
/// an old round can prematurely satisfy a new one). The low 32 bits carry
/// the spatial segment index (models up to ~1.5 billion elements); the
/// high 16 bits carry the sender's round number modulo 2^16 — the same
/// idea as slot versioning in later in-network aggregation systems.
pub const ROUND_SHIFT: u32 = 32;

/// Combines a spatial segment index and a round number into a wire `Seg`.
///
/// # Panics
///
/// Panics if `index` does not fit in 32 bits.
pub fn tag_round(index: u64, round: u32) -> u64 {
    assert!(index < (1 << ROUND_SHIFT), "segment index exceeds 32 bits");
    (u64::from(round & 0xFFFF) << ROUND_SHIFT) | index
}

/// The spatial segment index of a wire `Seg`.
pub fn seg_index(tagged: u64) -> u64 {
    tagged & ((1 << ROUND_SHIFT) - 1)
}

/// The round tag of a wire `Seg`.
pub fn seg_round(tagged: u64) -> u32 {
    ((tagged >> ROUND_SHIFT) & 0xFFFF) as u32
}

/// One gradient segment: the unit of on-the-fly aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Segment index (spatial offset `seg * FLOATS_PER_SEGMENT` in the
    /// gradient vector).
    pub seg: u64,
    /// Number of gradient vectors summed into `values` (1 for a worker's
    /// own contribution).
    pub count: u16,
    /// Raw gradient values.
    pub values: Vec<f32>,
}

/// Header-only view of an encoded data payload: everything
/// [`DataSegment::decode`] yields except the values themselves.
///
/// The hot paths that only need arrival bookkeeping (timing-mode workers)
/// or that consume values straight off the wire (the accelerator's
/// [`ingest_wire`](crate::Accelerator::ingest_wire)) use this to skip
/// materializing a fresh `Vec<f32>` per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Wire `Seg` field (round-tagged segment index).
    pub seg: u64,
    /// Number of gradient vectors summed into the payload.
    pub count: u16,
    /// Number of f32 values carried in the payload.
    pub len: usize,
}

/// Serializes a segment header plus value slice to a UDP payload without
/// requiring an owned [`DataSegment`] (the worker packetization path feeds
/// gradient chunks here directly).
pub(crate) fn encode_segment(seg: u64, count: u16, values: &[f32]) -> Bytes {
    assert!(seg <= MAX_SEG_INDEX, "segment index exceeds 48 bits");
    assert!(
        values.len() <= FLOATS_PER_SEGMENT,
        "segment of {} floats exceeds the MTU budget of {}",
        values.len(),
        FLOATS_PER_SEGMENT
    );
    // Write into an exact-size byte vector: the fixed 4-byte copies below
    // inline and autovectorize, where per-element `BufMut::put_f32` calls
    // would each go through a capacity check and an outlined extend.
    let mut buf = vec![0u8; SEG_HEADER_BYTES + values.len() * 4];
    let header = (seg << 16) | u64::from(count);
    buf[..SEG_HEADER_BYTES].copy_from_slice(&header.to_be_bytes());
    for (dst, v) in buf[SEG_HEADER_BYTES..].chunks_exact_mut(4).zip(values) {
        dst.copy_from_slice(&v.to_be_bytes());
    }
    Bytes::from(buf)
}

/// Reads just the round-tagged `Seg` field of a data payload, without
/// touching the body. Codec-agnostic: every codec layout begins with the
/// same 8-byte `Seg` header, so consumers that only need arrival identity
/// (gap detection in reliable transports) parse one way for all formats.
///
/// # Errors
///
/// Returns [`ProtocolError::Truncated`] if the payload is shorter than the
/// header.
pub fn decode_seg_field(payload: &[u8]) -> Result<u64, ProtocolError> {
    if payload.len() < SEG_HEADER_BYTES {
        return Err(ProtocolError::Truncated {
            needed: SEG_HEADER_BYTES,
            got: payload.len(),
        });
    }
    let header = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok(header >> 16)
}

impl DataSegment {
    /// Serializes to a UDP payload.
    ///
    /// # Panics
    ///
    /// Panics if the segment exceeds the MTU budget or the index exceeds
    /// [`MAX_SEG_INDEX`].
    pub fn encode(&self) -> Bytes {
        encode_segment(self.seg, self.count, &self.values)
    }

    /// Parses just the header and length of a UDP payload, without
    /// materializing the value vector.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] under exactly the same conditions as
    /// [`DataSegment::decode`].
    pub fn decode_meta(payload: &[u8]) -> Result<SegmentMeta, ProtocolError> {
        if payload.len() < SEG_HEADER_BYTES {
            return Err(ProtocolError::Truncated {
                needed: SEG_HEADER_BYTES,
                got: payload.len(),
            });
        }
        let header = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        let data_len = payload.len() - SEG_HEADER_BYTES;
        if !data_len.is_multiple_of(4) {
            return Err(ProtocolError::MisalignedPayload(data_len));
        }
        Ok(SegmentMeta {
            seg: header >> 16,
            count: (header & 0xFFFF) as u16,
            len: data_len / 4,
        })
    }

    /// Parses a UDP payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the payload is shorter than the header
    /// or its data is not f32-aligned.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        if payload.len() < SEG_HEADER_BYTES {
            return Err(ProtocolError::Truncated {
                needed: SEG_HEADER_BYTES,
                got: payload.len(),
            });
        }
        let header = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        let data = &payload[SEG_HEADER_BYTES..];
        if !data.len().is_multiple_of(4) {
            return Err(ProtocolError::MisalignedPayload(data.len()));
        }
        let values = data
            .chunks_exact(4)
            .map(|c| f32::from_be_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(DataSegment {
            seg: header >> 16,
            count: (header & 0xFFFF) as u16,
            values,
        })
    }
}

/// Number of segments needed for a gradient vector of `len` elements.
pub fn num_segments(len: usize) -> usize {
    len.div_ceil(FLOATS_PER_SEGMENT)
}

/// Splits a gradient vector into worker-contribution segments (count = 1,
/// round tag 0). The inverse of feeding every segment to a
/// [`GradientAssembler`].
pub fn segment_gradient(grad: &[f32]) -> Vec<DataSegment> {
    segment_gradient_round(grad, 0)
}

/// Splits a gradient vector into contribution segments tagged with `round`.
pub fn segment_gradient_round(grad: &[f32], round: u32) -> Vec<DataSegment> {
    grad.chunks(FLOATS_PER_SEGMENT)
        .enumerate()
        .map(|(i, chunk)| DataSegment {
            seg: tag_round(i as u64, round),
            count: 1,
            values: chunk.to_vec(),
        })
        .collect()
}

/// Reassembles aggregated segments back into a full gradient vector.
///
/// Tracks per-segment contributor counts so callers can average even when
/// different segments were aggregated over different numbers of workers
/// (possible after an `FBcast`).
#[derive(Debug, Clone)]
pub struct GradientAssembler {
    grad_len: usize,
    /// Elements per full segment — [`FLOATS_PER_SEGMENT`] for the f32
    /// format, the codec's own capacity otherwise. Segment `i` covers
    /// offsets `i * seg_elems ..`.
    seg_elems: usize,
    values: Vec<f32>,
    counts: Vec<u16>,
    received: Vec<bool>,
    pending: usize,
}

impl GradientAssembler {
    /// An assembler for a gradient of `grad_len` elements in the f32
    /// segment layout.
    ///
    /// # Panics
    ///
    /// Panics if `grad_len` is zero.
    pub fn new(grad_len: usize) -> Self {
        Self::with_seg_elems(grad_len, FLOATS_PER_SEGMENT)
    }

    /// An assembler whose segments carry `seg_elems` elements each (the
    /// codec's per-segment capacity).
    ///
    /// # Panics
    ///
    /// Panics if `grad_len` or `seg_elems` is zero.
    pub fn with_seg_elems(grad_len: usize, seg_elems: usize) -> Self {
        assert!(grad_len > 0, "gradient length must be positive");
        assert!(seg_elems > 0, "segment capacity must be positive");
        let n = grad_len.div_ceil(seg_elems);
        GradientAssembler {
            grad_len,
            seg_elems,
            values: vec![0.0; grad_len],
            counts: vec![0; n],
            received: vec![false; n],
            pending: n,
        }
    }

    /// Total number of segments expected.
    pub fn num_segments(&self) -> usize {
        self.received.len()
    }

    /// Whether every segment has arrived.
    pub fn is_complete(&self) -> bool {
        self.pending == 0
    }

    /// Indices of segments not yet received.
    pub fn missing(&self) -> Vec<u64> {
        self.received
            .iter()
            .enumerate()
            .filter(|(_, r)| !**r)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Installs a segment. Duplicate arrivals overwrite (results are
    /// idempotent re-broadcasts). Returns `true` once the vector is
    /// complete.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidField`] if the segment index is out
    /// of range or its length does not match its position.
    pub fn insert(&mut self, seg: &DataSegment) -> Result<bool, ProtocolError> {
        let idx = seg_index(seg.seg) as usize;
        if idx >= self.received.len() {
            return Err(ProtocolError::InvalidField("seg"));
        }
        let offset = idx * self.seg_elems;
        let expect = (self.grad_len - offset).min(self.seg_elems);
        if seg.values.len() != expect {
            return Err(ProtocolError::InvalidField("payload length"));
        }
        self.values[offset..offset + expect].copy_from_slice(&seg.values);
        self.counts[idx] = seg.count;
        if !self.received[idx] {
            self.received[idx] = true;
            self.pending -= 1;
        }
        Ok(self.is_complete())
    }

    /// Consumes the assembler, returning the element-wise **mean** gradient
    /// (each segment divided by its contributor count).
    ///
    /// # Panics
    ///
    /// Panics if the vector is incomplete or any count is zero.
    pub fn into_mean(self) -> Vec<f32> {
        assert!(self.is_complete(), "gradient vector incomplete");
        let mut out = self.values;
        for (i, &count) in self.counts.iter().enumerate() {
            assert!(count > 0, "segment {i} has zero contributors");
            let offset = i * self.seg_elems;
            let end = (offset + self.seg_elems).min(out.len());
            let inv = 1.0 / f32::from(count);
            for v in &mut out[offset..end] {
                *v *= inv;
            }
        }
        out
    }

    /// Consumes the assembler, returning the raw summed gradient and the
    /// per-segment contributor counts.
    ///
    /// # Panics
    ///
    /// Panics if the vector is incomplete.
    pub fn into_sum(self) -> (Vec<f32>, Vec<u16>) {
        assert!(self.is_complete(), "gradient vector incomplete");
        (self.values, self.counts)
    }
}

/// Outcome of feeding one segment to a [`RoundAssembler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundInsert {
    /// Segment belongs to a different round (or is malformed); ignored.
    Stale,
    /// Segment index already received this round (or the round already
    /// completed); ignored.
    Duplicate,
    /// Segment accepted; the round is still missing others.
    Accepted,
    /// Segment accepted and the round is now complete.
    Completed,
}

/// Round-scoped reassembly of broadcast aggregation results.
///
/// Wraps the bookkeeping every iSwitch worker needs around incoming result
/// segments: filtering stale rounds (expired flushes, duplicate `Help`
/// replies), deduplicating re-broadcast segments, tracking which indices
/// are still missing for loss recovery — and, when constructed with
/// `store_values`, buffering the actual aggregated f32 values so the mean
/// gradient can be recovered (the co-simulation fidelity path). Timing-mode
/// workers skip value storage: arrival bookkeeping alone determines when an
/// iteration completes.
#[derive(Debug, Clone)]
pub struct RoundAssembler {
    grad_len: usize,
    /// The wire format result segments arrive in; governs segment count,
    /// layout, and [`RoundAssembler::insert_wire`] parsing.
    codec: CodecKind,
    /// `Some(r)`: accept only segments tagged with round `r` (mod 2^16).
    /// `None`: accept any round tag (the asynchronous pipeline, where
    /// contributions are not round-aligned).
    round: Option<u32>,
    values: Option<GradientAssembler>,
    store_values: bool,
    received: Vec<bool>,
    pending: usize,
    done: bool,
}

impl RoundAssembler {
    /// An assembler for `grad_len`-element vectors in the f32 wire format.
    /// With `store_values`, aggregated values are buffered and
    /// [`RoundAssembler::take_mean`] yields the count-weighted mean after
    /// completion.
    ///
    /// # Panics
    ///
    /// Panics if `grad_len` is zero.
    pub fn new(grad_len: usize, store_values: bool) -> Self {
        Self::with_codec(grad_len, store_values, CodecKind::F32)
    }

    /// An assembler for result segments in `codec`'s wire format.
    ///
    /// # Panics
    ///
    /// Panics if `grad_len` is zero.
    pub fn with_codec(grad_len: usize, store_values: bool, codec: CodecKind) -> Self {
        assert!(grad_len > 0, "gradient length must be positive");
        let n = codec.num_segments(grad_len);
        RoundAssembler {
            grad_len,
            codec,
            round: None,
            values: store_values
                .then(|| GradientAssembler::with_seg_elems(grad_len, codec.elems_per_segment())),
            store_values,
            received: vec![false; n],
            pending: n,
            done: false,
        }
    }

    /// Resets for a new round. `round` of `None` accepts any round tag.
    pub fn begin_round(&mut self, round: Option<u32>) {
        self.round = round;
        self.received.fill(false);
        self.pending = self.received.len();
        self.done = false;
        if self.store_values {
            self.values = Some(GradientAssembler::with_seg_elems(
                self.grad_len,
                self.codec.elems_per_segment(),
            ));
        }
    }

    /// Whether the current round has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Segments received so far this round.
    pub fn received_count(&self) -> usize {
        self.received.len() - self.pending
    }

    /// Spatial indices of segments not yet received this round.
    pub fn missing(&self) -> Vec<u64> {
        self.received
            .iter()
            .enumerate()
            .filter(|(_, r)| !**r)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Feeds one received segment.
    pub fn insert(&mut self, seg: &DataSegment) -> RoundInsert {
        match self.admit(seg.seg) {
            Ok(idx) => {
                if let Some(asm) = &mut self.values {
                    if asm.insert(seg).is_err() {
                        return RoundInsert::Stale; // malformed payload length
                    }
                }
                self.mark_received(idx)
            }
            Err(verdict) => verdict,
        }
    }

    /// Feeds one received segment straight from its encoded wire payload,
    /// parsed under the assembler's codec. This is the single wire-decode
    /// path for broadcast results: the codec owns both the accelerator's
    /// accumulate and this decode, so the two cannot drift.
    ///
    /// Equivalent to the codec's full decode followed by
    /// [`RoundAssembler::insert`], except that bookkeeping-only assemblers
    /// (timing mode) never materialize the value vector — the hot path for
    /// broadcast results fanned out to every worker. Malformed payloads
    /// report [`RoundInsert::Stale`].
    pub fn insert_wire(&mut self, payload: &[u8]) -> RoundInsert {
        let codec = self.codec.codec();
        let Ok(meta) = codec.decode_meta(payload) else {
            return RoundInsert::Stale;
        };
        match self.admit(meta.seg) {
            Ok(idx) => {
                if let Some(asm) = self.values.as_mut() {
                    // Co-simulation keeps the aggregate values: fall back to
                    // the full decode (checks run only once — `admit` already
                    // filtered stale rounds and duplicates).
                    let Ok(seg) = codec.decode_values(payload) else {
                        return RoundInsert::Stale;
                    };
                    if asm.insert(&seg).is_err() {
                        return RoundInsert::Stale; // malformed payload length
                    }
                }
                self.mark_received(idx)
            }
            Err(verdict) => verdict,
        }
    }

    /// Round/range/duplicate filtering shared by the owned and wire insert
    /// paths; `Ok` holds the spatial index of an admissible segment.
    fn admit(&self, tagged: u64) -> Result<usize, RoundInsert> {
        if let Some(round) = self.round {
            if seg_round(tagged) != round & 0xFFFF {
                return Err(RoundInsert::Stale);
            }
        }
        let idx = seg_index(tagged) as usize;
        if idx >= self.received.len() {
            return Err(RoundInsert::Stale);
        }
        if self.done || self.received[idx] {
            return Err(RoundInsert::Duplicate);
        }
        Ok(idx)
    }

    fn mark_received(&mut self, idx: usize) -> RoundInsert {
        self.received[idx] = true;
        self.pending -= 1;
        if self.pending == 0 {
            self.done = true;
            RoundInsert::Completed
        } else {
            RoundInsert::Accepted
        }
    }

    /// Takes the count-weighted mean of the completed round, when values
    /// were stored. Returns `None` for bookkeeping-only assemblers or
    /// incomplete rounds.
    pub fn take_mean(&mut self) -> Option<Vec<f32>> {
        if !self.done {
            return None;
        }
        self.values.take().map(GradientAssembler::into_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_encode_decode_round_trips() {
        let seg = DataSegment {
            seg: 12345,
            count: 4,
            values: vec![1.5, -2.25, 0.0, f32::MIN],
        };
        let decoded = DataSegment::decode(&seg.encode()).expect("decodes");
        assert_eq!(decoded, seg);
    }

    #[test]
    fn full_segment_fits_mtu() {
        let seg = DataSegment {
            seg: 0,
            count: 1,
            values: vec![0.0; FLOATS_PER_SEGMENT],
        };
        assert!(seg.encode().len() <= MAX_UDP_PAYLOAD);
        assert_eq!(FLOATS_PER_SEGMENT, 366);
    }

    #[test]
    fn segmentation_then_assembly_is_identity() {
        let grad: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5 - 100.0).collect();
        let segs = segment_gradient(&grad);
        assert_eq!(segs.len(), num_segments(grad.len()));
        let mut asm = GradientAssembler::new(grad.len());
        for (i, s) in segs.iter().enumerate() {
            let complete = asm.insert(s).expect("valid");
            assert_eq!(complete, i + 1 == segs.len());
        }
        // count = 1 everywhere, so the mean is the original vector.
        assert_eq!(asm.into_mean(), grad);
    }

    #[test]
    fn assembler_tracks_missing_and_duplicates() {
        let grad = vec![1.0f32; FLOATS_PER_SEGMENT * 2 + 10];
        let segs = segment_gradient(&grad);
        let mut asm = GradientAssembler::new(grad.len());
        asm.insert(&segs[2]).unwrap();
        assert_eq!(asm.missing(), vec![0, 1]);
        asm.insert(&segs[2]).unwrap(); // duplicate is fine
        assert_eq!(asm.missing(), vec![0, 1]);
        asm.insert(&segs[0]).unwrap();
        asm.insert(&segs[1]).unwrap();
        assert!(asm.is_complete());
    }

    #[test]
    fn mean_divides_by_per_segment_count() {
        let grad = vec![8.0f32; 10];
        let mut segs = segment_gradient(&grad);
        segs[0].count = 4; // pretend the switch summed 4 workers
        let mut asm = GradientAssembler::new(grad.len());
        asm.insert(&segs[0]).unwrap();
        assert_eq!(asm.into_mean(), vec![2.0f32; 10]);
    }

    #[test]
    fn wrong_length_or_index_rejected() {
        let mut asm = GradientAssembler::new(100);
        let bad_idx = DataSegment {
            seg: 5,
            count: 1,
            values: vec![0.0; 100],
        };
        assert_eq!(
            asm.insert(&bad_idx),
            Err(ProtocolError::InvalidField("seg"))
        );
        let bad_len = DataSegment {
            seg: 0,
            count: 1,
            values: vec![0.0; 99],
        };
        assert_eq!(
            asm.insert(&bad_len),
            Err(ProtocolError::InvalidField("payload length"))
        );
    }

    #[test]
    fn truncated_or_misaligned_payload_rejected() {
        assert!(matches!(
            DataSegment::decode(&[0, 1, 2]),
            Err(ProtocolError::Truncated { .. })
        ));
        let mut payload = DataSegment {
            seg: 0,
            count: 1,
            values: vec![1.0],
        }
        .encode()
        .to_vec();
        payload.push(0xFF);
        assert_eq!(
            DataSegment::decode(&payload),
            Err(ProtocolError::MisalignedPayload(5))
        );
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn into_mean_requires_completeness() {
        let _ = GradientAssembler::new(10).into_mean();
    }

    #[test]
    fn round_tags_round_trip() {
        let tagged = tag_round(4_590, 65_535);
        assert_eq!(seg_index(tagged), 4_590);
        assert_eq!(seg_round(tagged), 65_535);
        // Round 0 is the identity: legacy single-round flows unchanged.
        assert_eq!(tag_round(7, 0), 7);
        // Rounds wrap modulo 2^16.
        assert_eq!(seg_round(tag_round(0, 65_536 + 3)), 3);
    }

    #[test]
    fn assembler_accepts_tagged_segments() {
        let grad = vec![2.0f32; 100];
        let segs = segment_gradient_round(&grad, 9);
        let mut asm = GradientAssembler::new(grad.len());
        for s in &segs {
            asm.insert(s).unwrap();
        }
        assert_eq!(asm.into_mean(), grad);
    }

    #[test]
    fn round_assembler_filters_stale_rounds_and_duplicates() {
        let len = FLOATS_PER_SEGMENT * 2 + 10;
        let grad = vec![1.0f32; len];
        let mut asm = RoundAssembler::new(len, false);
        asm.begin_round(Some(5));

        // A segment from round 4 is stale.
        let stale = &segment_gradient_round(&grad, 4)[0];
        assert_eq!(asm.insert(stale), RoundInsert::Stale);
        assert_eq!(asm.received_count(), 0);

        let segs = segment_gradient_round(&grad, 5);
        assert_eq!(asm.insert(&segs[0]), RoundInsert::Accepted);
        assert_eq!(asm.insert(&segs[0]), RoundInsert::Duplicate);
        assert_eq!(asm.missing(), vec![1, 2]);
        assert_eq!(asm.insert(&segs[1]), RoundInsert::Accepted);
        assert_eq!(asm.insert(&segs[2]), RoundInsert::Completed);
        assert!(asm.is_done());
        // Everything after completion is a duplicate until the next round.
        assert_eq!(asm.insert(&segs[1]), RoundInsert::Duplicate);
        // Bookkeeping-only assembler has no values to return.
        assert_eq!(asm.take_mean(), None);

        asm.begin_round(Some(6));
        assert!(!asm.is_done());
        assert_eq!(asm.received_count(), 0);
    }

    #[test]
    fn round_assembler_recovers_count_weighted_mean() {
        let len = FLOATS_PER_SEGMENT + 3;
        let summed = vec![6.0f32; len];
        let mut asm = RoundAssembler::new(len, true);
        asm.begin_round(Some(0));
        for mut seg in segment_gradient_round(&summed, 0) {
            seg.count = 3; // aggregated over three workers
            asm.insert(&seg);
        }
        let mean = asm.take_mean().expect("complete with values");
        assert!(mean.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        // The mean is consumed; a new round stores fresh values.
        assert_eq!(asm.take_mean(), None);
    }

    #[test]
    fn round_assembler_any_round_mode_accepts_mixed_tags() {
        let len = FLOATS_PER_SEGMENT + 1;
        let grad = vec![1.0f32; len];
        let mut asm = RoundAssembler::new(len, false);
        asm.begin_round(None);
        let r0 = segment_gradient_round(&grad, 0);
        let r7 = segment_gradient_round(&grad, 7);
        assert_eq!(asm.insert(&r0[0]), RoundInsert::Accepted);
        assert_eq!(asm.insert(&r7[1]), RoundInsert::Completed);
    }
}
