//! The switch control plane (paper §3.3, Fig. 9): a lightweight membership
//! table for the workers and switches in the training job, plus accelerator
//! management state.

use std::collections::BTreeMap;

use iswitch_netsim::IpAddr;
use serde::{Deserialize, Serialize};

/// Whether a membership entry is a worker node or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberType {
    /// A training worker (server node).
    Worker,
    /// A switch participating in hierarchical aggregation.
    Switch,
}

/// One row of the membership table (Fig. 9): ID, IP address, UDP port,
/// type, and the parent's ID in the network topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Member {
    /// Unique id of this entry.
    pub id: u32,
    /// IP address of the worker or switch.
    pub ip: IpAddr,
    /// UDP port of the training endpoint.
    pub port: u16,
    /// Entry type.
    pub member_type: MemberType,
    /// Parent entry in the topology (`None` for the root).
    pub parent: Option<u32>,
}

/// The control plane's membership table.
///
/// Entries are updated by `Join`/`Leave` control messages and consulted by
/// the data plane for collection, computation, forwarding, and broadcast.
///
/// # Examples
///
/// ```
/// use iswitch_core::{Member, MemberType, MembershipTable};
/// use iswitch_netsim::IpAddr;
///
/// let mut table = MembershipTable::new();
/// table.join(Member {
///     id: 0,
///     ip: IpAddr::new(10, 0, 0, 2),
///     port: 9999,
///     member_type: MemberType::Worker,
///     parent: Some(4),
/// });
/// assert_eq!(table.worker_count(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MembershipTable {
    entries: BTreeMap<u32, Member>,
}

impl MembershipTable {
    /// An empty table.
    pub fn new() -> Self {
        MembershipTable::default()
    }

    /// Inserts or replaces an entry. Returns the previous entry with the
    /// same id, if any.
    pub fn join(&mut self, member: Member) -> Option<Member> {
        self.entries.insert(member.id, member)
    }

    /// Removes an entry by id, returning it if present.
    pub fn leave(&mut self, id: u32) -> Option<Member> {
        self.entries.remove(&id)
    }

    /// Looks up an entry.
    pub fn get(&self, id: u32) -> Option<&Member> {
        self.entries.get(&id)
    }

    /// Looks up an entry by IP address.
    pub fn get_by_ip(&self, ip: IpAddr) -> Option<&Member> {
        self.entries.values().find(|m| m.ip == ip)
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Member> {
        self.entries.values()
    }

    /// Number of worker entries — the default aggregation threshold `H`
    /// ("By default, H is equal to the number of workers", §3.2).
    pub fn worker_count(&self) -> usize {
        self.entries
            .values()
            .filter(|m| m.member_type == MemberType::Worker)
            .count()
    }

    /// The smallest unused id.
    pub fn next_id(&self) -> u32 {
        (0..)
            .find(|id| !self.entries.contains_key(id))
            .expect("ids not exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(id: u32, last_octet: u8) -> Member {
        Member {
            id,
            ip: IpAddr::new(10, 0, 0, last_octet),
            port: 9999,
            member_type: MemberType::Worker,
            parent: Some(99),
        }
    }

    #[test]
    fn join_leave_lifecycle() {
        let mut t = MembershipTable::new();
        assert!(t.join(worker(0, 2)).is_none());
        assert!(t.join(worker(1, 4)).is_none());
        assert_eq!(t.len(), 2);
        assert_eq!(t.worker_count(), 2);
        let gone = t.leave(0).expect("present");
        assert_eq!(gone.ip, IpAddr::new(10, 0, 0, 2));
        assert_eq!(t.worker_count(), 1);
        assert!(t.leave(0).is_none());
    }

    #[test]
    fn rejoin_replaces_entry() {
        let mut t = MembershipTable::new();
        t.join(worker(0, 2));
        let old = t.join(worker(0, 7)).expect("replaced");
        assert_eq!(old.ip, IpAddr::new(10, 0, 0, 2));
        assert_eq!(t.get(0).unwrap().ip, IpAddr::new(10, 0, 0, 7));
    }

    #[test]
    fn switches_do_not_count_as_workers() {
        let mut t = MembershipTable::new();
        t.join(worker(0, 2));
        t.join(Member {
            id: 4,
            ip: IpAddr::new(10, 0, 0, 10),
            port: 9990,
            member_type: MemberType::Switch,
            parent: None,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.worker_count(), 1);
    }

    #[test]
    fn next_id_fills_gaps() {
        let mut t = MembershipTable::new();
        t.join(worker(0, 2));
        t.join(worker(2, 3));
        assert_eq!(t.next_id(), 1);
        t.join(worker(1, 4));
        assert_eq!(t.next_id(), 3);
    }

    #[test]
    fn lookup_by_ip() {
        let mut t = MembershipTable::new();
        t.join(worker(5, 9));
        assert_eq!(t.get_by_ip(IpAddr::new(10, 0, 0, 9)).unwrap().id, 5);
        assert!(t.get_by_ip(IpAddr::new(10, 0, 0, 1)).is_none());
    }
}
