//! The iSwitch data/control-plane extension for a simulated switch
//! (paper §3.3, Fig. 6, and §3.4's hierarchical aggregation).
//!
//! Installed into an `iswitch-netsim` switch, the extension plays the role
//! of the paper's enhanced input arbiter: packets tagged with the reserved
//! ToS values divert to the in-switch accelerator; everything else follows
//! the regular forwarding path untouched.
//!
//! Deployment shapes:
//!
//! * **Root** (single-switch star, or the core of a tree): completed
//!   aggregates are broadcast down every child port.
//! * **Intermediate** (a ToR under a core switch): completed *local*
//!   aggregates are forwarded up the uplink for global aggregation
//!   ("it will forward the aggregated segment to the switches in the
//!   higher level", §3.4), and result packets arriving *on* the uplink are
//!   fanned out to the children.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use iswitch_netsim::{
    ExtAction, IpAddr, Packet, PortId, SimDuration, SimTime, SwitchExtension, SwitchServices,
};
use iswitch_obs::{Counter, Histogram, Registry, Span, TraceEvent};

use crate::accelerator::{Accelerator, AcceleratorConfig};
use crate::control_plane::{Member, MemberType, MembershipTable};
use crate::protocol::codec::CodecKind;
use crate::protocol::{
    dscp, seg_index, seg_round, ControlMessage, DataSegment, ISWITCH_UDP_PORT, TOS_CONTROL,
    TOS_DATA,
};

/// Destination IP carried by downward result broadcasts. Worker apps accept
/// iSwitch data packets regardless of destination address.
pub const RESULT_BROADCAST_IP: IpAddr = IpAddr::new(10, 255, 255, 255);

/// Destination IP carried by upward (toward the root) aggregate packets.
pub const UPSTREAM_IP: IpAddr = IpAddr::new(10, 255, 255, 254);

/// How the accelerator schedules its output (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationMode {
    /// Sum each packet as it arrives and emit each segment's aggregate the
    /// moment its counter reaches `H` (Fig. 8b — the paper's design).
    #[default]
    OnTheFly,
    /// Conventional scheme (Fig. 8a), for ablation: buffer until **every**
    /// segment of the round has all `H` contributions, then run the whole
    /// summation and emit all segments back to back.
    StoreAndForward,
}

/// Where a switch sits in the aggregation hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationRole {
    /// The top of the hierarchy: completed aggregates broadcast downward.
    Root,
    /// A lower-level switch: completed local aggregates travel up `uplink`;
    /// results arriving on `uplink` fan out to the children.
    Intermediate {
        /// The port facing the parent switch.
        uplink: PortId,
    },
}

/// Configuration for [`IswitchExtension`].
#[derive(Debug, Clone)]
pub struct ExtensionConfig {
    /// Hierarchy position.
    pub role: AggregationRole,
    /// Ports facing workers (leaf) or child switches (core).
    pub child_ports: Vec<PortId>,
    /// Gradient vector length in f32 elements.
    pub grad_len: usize,
    /// Aggregation threshold `H`. Defaults to the child count in
    /// [`ExtensionConfig::for_star`] / [`ExtensionConfig::for_tree_level`].
    pub threshold: u16,
    /// Accelerator hardware parameters.
    pub accel: AcceleratorConfig,
    /// Source IP stamped on emitted packets.
    pub switch_ip: IpAddr,
    /// When true, `Join`/`Leave` control messages adjust `H` to the current
    /// worker count.
    pub auto_threshold: bool,
    /// Output scheduling (ablation knob; the paper's design is
    /// [`AggregationMode::OnTheFly`]).
    pub mode: AggregationMode,
    /// When set, a partial round that has seen no contribution for this
    /// long is flushed as a partial broadcast. Protects against permanent
    /// round desynchronization after a lost contribution: without expiry,
    /// a 3-of-4 round would complete with the *next* iteration's first
    /// packet and stay phase-shifted forever (the round-versioning problem
    /// follow-on systems like SwitchML solve with slot versions).
    pub stale_flush: Option<SimDuration>,
    /// Aggregation format the job runs in (the per-job datapath knob).
    /// Every switch and worker of a job must agree; defaults to
    /// [`CodecKind::F32`], the paper's raw-float format.
    pub codec: CodecKind,
    /// Routes slot-denied rounds through the fallback-to-host path
    /// (slower, numerically identical) instead of dropping them. Enabled
    /// by the multi-tenant runner; the single-tenant default is `false`,
    /// preserving the legacy drop-on-overflow behavior bit for bit.
    pub host_fallback: bool,
    /// Arms the seeded slot-leak bug in the accelerator (chaos-harness
    /// fault injection for the I6 isolation invariant; never set in
    /// production configurations).
    pub slot_leak_bug: bool,
}

impl ExtensionConfig {
    /// Configuration for the single-switch (star) deployment of Fig. 1c:
    /// the switch is the root; `H` = number of workers.
    pub fn for_star(child_ports: Vec<PortId>, grad_len: usize) -> Self {
        let threshold = child_ports.len() as u16;
        ExtensionConfig {
            role: AggregationRole::Root,
            child_ports,
            grad_len,
            threshold,
            accel: AcceleratorConfig::default(),
            switch_ip: IpAddr::new(10, 0, 255, 1),
            auto_threshold: false,
            mode: AggregationMode::OnTheFly,
            stale_flush: None,
            codec: CodecKind::F32,
            host_fallback: false,
            slot_leak_bug: false,
        }
    }

    /// Configuration for one switch of a two-layer tree (Fig. 10): ToRs are
    /// intermediates aggregating their local workers; the core is the root
    /// aggregating one contribution per rack.
    pub fn for_tree_level(
        role: AggregationRole,
        child_ports: Vec<PortId>,
        grad_len: usize,
    ) -> Self {
        let threshold = child_ports.len() as u16;
        ExtensionConfig {
            role,
            child_ports,
            grad_len,
            threshold,
            accel: AcceleratorConfig::default(),
            switch_ip: IpAddr::new(10, 0, 255, 2),
            auto_threshold: false,
            mode: AggregationMode::OnTheFly,
            stale_flush: None,
            codec: CodecKind::F32,
            host_fallback: false,
            slot_leak_bug: false,
        }
    }

    /// Switches to the conventional store-and-forward output schedule
    /// (Fig. 8a), for the on-the-fly ablation.
    pub fn store_and_forward(mut self) -> Self {
        self.mode = AggregationMode::StoreAndForward;
        self
    }

    /// Overrides the aggregation threshold `H` (the `SetH` control action
    /// applied at construction). Used by the partial-aggregation ablation.
    pub fn with_threshold(mut self, h: u16) -> Self {
        assert!(h > 0, "threshold must be positive");
        self.threshold = h;
        self
    }

    /// Enables switch-side expiry of stale partial rounds (see
    /// [`ExtensionConfig::stale_flush`]).
    pub fn with_stale_flush(mut self, age: SimDuration) -> Self {
        self.stale_flush = Some(age);
        self
    }

    /// Sets the job's aggregation codec (see [`ExtensionConfig::codec`]).
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Enables the fallback-to-host path (see
    /// [`ExtensionConfig::host_fallback`]).
    pub fn with_host_fallback(mut self) -> Self {
        self.host_fallback = true;
        self
    }

    /// Arms the seeded slot-leak bug (see
    /// [`ExtensionConfig::slot_leak_bug`]).
    pub fn with_slot_leak_bug(mut self) -> Self {
        self.slot_leak_bug = true;
        self
    }
}

/// Counters for the extension beyond the accelerator's own.
#[derive(Debug, Clone, Default)]
pub struct ExtensionStats {
    /// Result packets broadcast downward.
    pub broadcasts: u64,
    /// Aggregates forwarded up the hierarchy.
    pub upward_forwards: u64,
    /// Control messages handled.
    pub control_handled: u64,
    /// `Help` retransmissions served.
    pub help_served: u64,
    /// Stale partial rounds flushed by the expiry sweep.
    pub stale_flushes: u64,
    /// Non-iSwitch packets passed through to regular forwarding.
    pub passed_through: u64,
    /// Injected accelerator restarts ([`FAULT_RESET_TOKEN`]).
    pub fault_resets: u64,
    /// Result emissions that carried an echoed ECN-CE mark (some
    /// contribution to the segment round arrived CE-marked).
    pub ecn_echoed: u64,
}

enum PendingEmit {
    Broadcast { seg: DataSegment, ce: bool },
    Upward { seg: DataSegment, ce: bool },
    HelpReply { seg: DataSegment, to: IpAddr },
}

/// Metric handles registered in the owning simulation's registry.
///
/// Resolved lazily on the first callback (the extension is constructed
/// before it joins a simulation, so the registry is not available in
/// `new`). Names are prefixed `core.switch.nNNN.` with the switch's node
/// id, so every switch in a tree exports distinct series.
struct ExtObs {
    /// Time from a segment round's first contribution to its threshold-H
    /// completion, including the accelerator's pipeline latency. This is
    /// the paper's per-segment aggregation-latency measurement (§5).
    agg_latency_ns: Arc<Histogram>,
    /// Segment rounds completed by reaching the threshold `H`.
    h_hits: Arc<Counter>,
    /// Data packets ingested by the accelerator.
    data_ingested: Arc<Counter>,
    /// `Help` retransmissions served from the result cache.
    help_served: Arc<Counter>,
    /// `Help` requests that missed the result cache.
    help_missed: Arc<Counter>,
    /// Stale partial rounds flushed by the expiry sweep.
    stale_flushes: Arc<Counter>,
    /// Result packets broadcast downward.
    broadcasts: Arc<Counter>,
    /// Aggregates forwarded up the hierarchy.
    upward_forwards: Arc<Counter>,
    /// Control messages handled.
    control_handled: Arc<Counter>,
    /// Non-iSwitch packets passed through to regular forwarding.
    passed_through: Arc<Counter>,
    /// Accumulator elements clamped by the codec's saturating add.
    codec_saturations: Arc<Counter>,
    /// Accumulator exponent rebases performed by the codec.
    codec_rebases: Arc<Counter>,
    /// New rounds denied an aggregation slot by the tenant grant.
    /// Registered only when the tenant datapath features are enabled, so
    /// single-tenant metric reports stay byte-identical to the legacy
    /// build.
    slot_denials: Option<Arc<Counter>>,
    /// Rounds completed through the fallback-to-host path (same
    /// conditional registration as `slot_denials`).
    fallback_rounds: Option<Arc<Counter>>,
}

impl ExtObs {
    fn resolve(registry: &Registry, node_index: usize, tenant_metrics: bool) -> Self {
        let name = |metric: &str| format!("core.switch.n{node_index:03}.{metric}");
        ExtObs {
            agg_latency_ns: registry.histogram(&name("agg_latency_ns")),
            h_hits: registry.counter(&name("h_hits")),
            data_ingested: registry.counter(&name("data_ingested")),
            help_served: registry.counter(&name("help_served")),
            help_missed: registry.counter(&name("help_missed")),
            stale_flushes: registry.counter(&name("stale_flushes")),
            broadcasts: registry.counter(&name("broadcasts")),
            upward_forwards: registry.counter(&name("upward_forwards")),
            control_handled: registry.counter(&name("control_handled")),
            passed_through: registry.counter(&name("passed_through")),
            codec_saturations: registry.counter(&name("codec_saturations")),
            codec_rebases: registry.counter(&name("codec_rebases")),
            slot_denials: tenant_metrics.then(|| registry.counter(&name("slot_denials"))),
            fallback_rounds: tenant_metrics.then(|| registry.counter(&name("fallback_rounds"))),
        }
    }
}

/// The in-switch aggregation extension.
/// Timer token reserved for the stale-partial sweep.
const SWEEP_TOKEN: u64 = u64::MAX;

/// Timer token reserved for fault injection: delivered to the extension
/// (via `iswitch-netsim`'s `FaultAction::InjectTimer`) it models a switch
/// restart — the accelerator loses every piece of volatile state: partial
/// sums, counters, the result cache, and any scheduled emissions. Workers
/// recover through the ordinary `Help`/`FBcast`/retransmission paths.
pub const FAULT_RESET_TOKEN: u64 = u64::MAX - 1;

/// The in-switch aggregation extension (data plane + control plane).
pub struct IswitchExtension {
    cfg: ExtensionConfig,
    accel: Accelerator,
    membership: MembershipTable,
    pending: HashMap<u64, PendingEmit>,
    next_token: u64,
    /// Last contribution arrival per partial segment (sweep bookkeeping).
    last_arrival: HashMap<usize, SimTime>,
    sweep_armed: bool,
    /// Completed segments held back in store-and-forward mode until the
    /// whole round is resident, with their echoed-CE flag.
    held: Vec<(DataSegment, bool)>,
    stats: ExtensionStats,
    /// Segment rounds that saw at least one CE-marked contribution; the
    /// mark is echoed onto the round's result emission (the congestion
    /// feedback leg of DCQCN: senders learn of queue build-up from the
    /// aggregate coming back). Only inserted/removed by segment index, so
    /// iteration order never matters.
    ecn_seen: HashSet<usize>,
    /// First contribution time of each in-flight segment round, for the
    /// aggregation-latency histogram.
    round_open: HashMap<usize, SimTime>,
    obs: Option<ExtObs>,
}

impl IswitchExtension {
    /// Builds the extension and its accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no children, zero-length
    /// gradient) or the model does not fit the accelerator's buffer budget.
    pub fn new(cfg: ExtensionConfig) -> Self {
        assert!(
            !cfg.child_ports.is_empty(),
            "a switch needs at least one child"
        );
        assert!(cfg.grad_len > 0, "gradient length must be positive");
        let mut accel = Accelerator::with_codec(
            cfg.accel.clone(),
            cfg.codec.num_segments(cfg.grad_len),
            cfg.threshold.max(1),
            cfg.codec,
        );
        accel.set_host_fallback(cfg.host_fallback);
        accel.set_slot_leak_bug(cfg.slot_leak_bug);
        IswitchExtension {
            cfg,
            accel,
            membership: MembershipTable::new(),
            pending: HashMap::new(),
            next_token: 0,
            last_arrival: HashMap::new(),
            sweep_armed: false,
            held: Vec::new(),
            stats: ExtensionStats::default(),
            ecn_seen: HashSet::new(),
            round_open: HashMap::new(),
            obs: None,
        }
    }

    /// Resolves the metric handles on first use and returns them.
    fn obs(&mut self, sw: &SwitchServices<'_, '_>) -> &ExtObs {
        let tenant_metrics = self.cfg.host_fallback || self.cfg.slot_leak_bug;
        self.obs
            .get_or_insert_with(|| ExtObs::resolve(sw.metrics(), sw.node().index(), tenant_metrics))
    }

    /// The underlying accelerator (for inspection in tests/benches).
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// Mutable access to the accelerator. The multi-tenant arbiter uses
    /// this at epoch barriers to install grants
    /// ([`Accelerator::set_grant`]) and harvest demand
    /// ([`Accelerator::take_demand_peak`]); the simulation itself never
    /// mutates the accelerator from outside the switch.
    pub fn accelerator_mut(&mut self) -> &mut Accelerator {
        &mut self.accel
    }

    /// The control plane's membership table.
    pub fn membership(&self) -> &MembershipTable {
        &self.membership
    }

    /// Extension counters.
    pub fn stats(&self) -> &ExtensionStats {
        &self.stats
    }

    fn schedule(&mut self, sw: &mut SwitchServices<'_, '_>, delay: SimDuration, emit: PendingEmit) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, emit);
        sw.set_timer(delay, token);
    }

    fn data_packet(&self, dst: IpAddr, seg: &DataSegment) -> Packet {
        // Reuses the worker-side factory so switch-emitted results carry
        // the same causal key shape as worker contributions. Results leave
        // in the codec's wide format (for f32, the legacy raw encoding).
        crate::worker::result_packet(self.cfg.switch_ip, dst, seg, self.cfg.codec)
    }

    fn broadcast_down(&mut self, sw: &mut SwitchServices<'_, '_>, seg: &DataSegment, ce: bool) {
        let mut pkt = self.data_packet(RESULT_BROADCAST_IP, seg);
        if ce {
            pkt.mark_ecn_ce();
            self.stats.ecn_echoed += 1;
        }
        self.fanout_down(sw, pkt);
    }

    /// Fans a result packet out to every child port.
    fn fanout_down(&mut self, sw: &mut SwitchServices<'_, '_>, pkt: Packet) {
        // Clone for all children but the last, which takes the packet by
        // value — one fewer refcount round-trip per broadcast.
        let (last, rest) = self
            .cfg
            .child_ports
            .split_last()
            .expect("asserted non-empty in new()");
        for &port in rest {
            sw.send_port(port, pkt.clone());
        }
        sw.send_port(*last, pkt);
        self.stats.broadcasts += self.cfg.child_ports.len() as u64;
        if let Some(obs) = &self.obs {
            obs.broadcasts.add(self.cfg.child_ports.len() as u64);
        }
    }

    fn emit_completed(
        &mut self,
        sw: &mut SwitchServices<'_, '_>,
        seg: DataSegment,
        delay: SimDuration,
    ) {
        // Consume the round's congestion mark: it rides out on exactly the
        // emission that closes the round.
        let ce = self.ecn_seen.remove(&(seg.seg as usize));
        match self.cfg.mode {
            AggregationMode::OnTheFly => {
                let emit = match self.cfg.role {
                    AggregationRole::Root => PendingEmit::Broadcast { seg, ce },
                    AggregationRole::Intermediate { .. } => PendingEmit::Upward { seg, ce },
                };
                self.schedule(sw, delay, emit);
            }
            AggregationMode::StoreAndForward => {
                self.held.push((seg, ce));
                if self.held.len() == self.accel.num_segments() {
                    // The conventional scheme only starts summing once all
                    // vectors are resident: charge one pass of every packet
                    // through the adders before anything leaves.
                    let per_packet = self.cfg.accel.packet_latency(1_472);
                    let total = self.held.len() as u64
                        * u64::from(self.accel.threshold())
                        * per_packet.as_nanos();
                    let mut when = SimDuration::from_nanos(total);
                    for (seg, ce) in std::mem::take(&mut self.held) {
                        let emit = match self.cfg.role {
                            AggregationRole::Root => PendingEmit::Broadcast { seg, ce },
                            AggregationRole::Intermediate { .. } => PendingEmit::Upward { seg, ce },
                        };
                        self.schedule(sw, when, emit);
                        when += per_packet;
                    }
                }
            }
        }
    }

    fn handle_data(&mut self, sw: &mut SwitchServices<'_, '_>, in_port: PortId, pkt: &Packet) {
        if let AggregationRole::Intermediate { uplink } = self.cfg.role {
            if in_port == uplink {
                // Globally aggregated result coming down: fan out unchanged.
                // The payload is already the exact bytes the children expect,
                // so relay it zero-copy instead of decode + re-encode.
                let meta = self
                    .cfg
                    .codec
                    .codec()
                    .decode_meta(&pkt.payload)
                    .expect("malformed result packet from parent switch");
                let mut relay = crate::worker::data_packet_wire(
                    self.cfg.switch_ip,
                    RESULT_BROADCAST_IP,
                    meta,
                    pkt.payload.clone(),
                );
                // Congestion marks on the result path survive the relay so
                // workers two hops down still see them.
                if pkt.ecn_ce() {
                    relay.mark_ecn_ce();
                    self.stats.ecn_echoed += 1;
                }
                self.fanout_down(sw, relay);
                return;
            }
        }
        let meta = match self.cfg.codec.codec().decode_meta(&pkt.payload) {
            Ok(meta) => meta,
            // Malformed data packets are dropped, as real hardware would.
            Err(_) => return,
        };
        let idx = meta.seg as usize;
        if pkt.ecn_ce() {
            self.ecn_seen.insert(idx);
        }
        let now = sw.now();
        self.round_open.entry(idx).or_insert(now);
        let sat_before = self.accel.stats().codec_saturations;
        let reb_before = self.accel.stats().codec_rebases;
        let den_before = self.accel.stats().slot_denials;
        let fbr_before = self.accel.stats().fallback_rounds;
        let (done, latency) = self.accel.ingest_wire(meta, &pkt.payload);
        let sat_total = self.accel.stats().codec_saturations;
        let reb_total = self.accel.stats().codec_rebases;
        let den_total = self.accel.stats().slot_denials;
        let fbr_total = self.accel.stats().fallback_rounds;
        if let Some(ts) = sw.timeseries() {
            // Cumulative quantization-pressure tracks; change-collapse in
            // the sink keeps clean rounds free.
            let base = format!("core.switch.n{:03}", sw.node().index());
            let t = now.as_nanos();
            ts.record(&format!("{base}.codec_saturations"), t, sat_total as i64);
            ts.record(&format!("{base}.codec_rebases"), t, reb_total as i64);
        }
        let obs = self.obs(sw);
        obs.data_ingested.inc();
        obs.codec_saturations.add(sat_total - sat_before);
        obs.codec_rebases.add(reb_total - reb_before);
        if let Some(c) = &obs.slot_denials {
            c.add(den_total - den_before);
        }
        if let Some(c) = &obs.fallback_rounds {
            c.add(fbr_total - fbr_before);
        }
        match done {
            Some(agg) => {
                // Aggregation latency spans the round's first contribution
                // to the result leaving the accelerator pipeline.
                let opened = self.round_open.remove(&idx).unwrap_or(now);
                let obs = self.obs.as_ref().expect("resolved above");
                obs.h_hits.inc();
                obs.agg_latency_ns
                    .record(now.saturating_duration_since(opened).as_nanos() + latency.as_nanos());
                self.last_arrival.remove(&idx);
                if let Some(trace) = sw.trace() {
                    // The contribution that crossed the threshold is the one
                    // that gated this window — name it for straggler
                    // attribution.
                    let id = trace.alloc_span_id();
                    Span::begin(id, "switch.agg_window", opened.as_nanos())
                        .attr_u64("round", u64::from(seg_round(meta.seg)))
                        .attr_u64("seg", seg_index(meta.seg))
                        .attr_u64("last_src", u64::from(pkt.ip.src.as_u32()))
                        .attr_str("last_src_ip", &pkt.ip.src.to_string())
                        .attr_u64("node", sw.node().index() as u64)
                        .end((now + latency).as_nanos())
                        .emit(trace);
                }
                self.emit_completed(sw, agg, latency);
            }
            None => {
                if let Some(age) = self.cfg.stale_flush {
                    self.last_arrival.insert(idx, sw.now());
                    if !self.sweep_armed {
                        self.sweep_armed = true;
                        sw.set_timer(age / 2, SWEEP_TOKEN);
                    }
                }
            }
        }
    }

    /// Flushes partial rounds that have seen no contribution for the
    /// configured age, then re-arms the sweep while partials remain.
    fn sweep_stale(&mut self, sw: &mut SwitchServices<'_, '_>) {
        let Some(age) = self.cfg.stale_flush else {
            self.sweep_armed = false;
            return;
        };
        let now = sw.now();
        let mut stale: Vec<usize> = self
            .last_arrival
            .iter()
            .filter(|(_, &at)| now.saturating_duration_since(at) >= age)
            .map(|(&idx, _)| idx)
            .collect();
        // HashMap iteration order varies between processes; flush in
        // segment order so same-seed runs replay byte-identically.
        stale.sort_unstable();
        for idx in stale {
            self.last_arrival.remove(&idx);
            self.round_open.remove(&idx);
            if let Some(partial) = self.accel.force_broadcast(idx as u64) {
                self.stats.stale_flushes += 1;
                if let Some(obs) = &self.obs {
                    obs.stale_flushes.inc();
                }
                if let Some(trace) = sw.trace() {
                    trace.record(
                        TraceEvent::new(now.as_nanos(), "switch.flush")
                            .with_u64("round", u64::from(seg_round(idx as u64)))
                            .with_u64("seg", seg_index(idx as u64))
                            .with_u64("count", u64::from(partial.count))
                            .with_str("reason", "stale")
                            .with_u64("node", sw.node().index() as u64),
                    );
                }
                self.emit_completed(sw, partial, SimDuration::from_nanos(0));
            }
        }
        if self.last_arrival.is_empty() {
            self.sweep_armed = false;
        } else {
            sw.set_timer(age / 2, SWEEP_TOKEN);
        }
    }

    fn ack(&self, sw: &mut SwitchServices<'_, '_>, to: IpAddr, of: u8, ok: bool) {
        let pkt = Packet::udp(
            self.cfg.switch_ip,
            to,
            ISWITCH_UDP_PORT,
            ISWITCH_UDP_PORT,
            TOS_CONTROL,
        )
        .with_payload(ControlMessage::Ack { of, ok }.encode());
        let _ = sw.send_routed(pkt);
    }

    fn handle_control(&mut self, sw: &mut SwitchServices<'_, '_>, pkt: &Packet) {
        let Ok(msg) = ControlMessage::decode(&pkt.payload) else {
            return;
        };
        self.stats.control_handled += 1;
        self.obs(sw).control_handled.inc();
        let code = msg.action_code();
        let from = pkt.ip.src;
        match msg {
            ControlMessage::Join {
                worker_id,
                grad_len,
            } => {
                let ok = grad_len as usize == self.cfg.grad_len;
                if ok {
                    self.membership.join(Member {
                        id: worker_id,
                        ip: from,
                        port: pkt.udp.src_port,
                        member_type: MemberType::Worker,
                        parent: None,
                    });
                    if self.cfg.auto_threshold {
                        self.accel
                            .set_threshold(self.membership.worker_count().max(1) as u16);
                    }
                }
                self.ack(sw, from, code, ok);
            }
            ControlMessage::Leave { worker_id } => {
                let ok = self.membership.leave(worker_id).is_some();
                if ok && self.cfg.auto_threshold && self.membership.worker_count() > 0 {
                    self.accel
                        .set_threshold(self.membership.worker_count() as u16);
                }
                self.ack(sw, from, code, ok);
            }
            ControlMessage::Reset => {
                self.accel.reset();
                self.round_open.clear();
                self.ecn_seen.clear();
                self.ack(sw, from, code, true);
            }
            ControlMessage::SetH { h } => {
                let ok = h > 0 && h <= u32::from(u16::MAX);
                if ok {
                    self.accel.set_threshold(h as u16);
                }
                self.ack(sw, from, code, ok);
            }
            ControlMessage::FBcast { seg } => {
                if let Some(partial) = self.accel.force_broadcast(seg) {
                    self.round_open.remove(&(seg as usize));
                    if let Some(trace) = sw.trace() {
                        trace.record(
                            TraceEvent::new(sw.now().as_nanos(), "switch.flush")
                                .with_u64("round", u64::from(seg_round(seg)))
                                .with_u64("seg", seg_index(seg))
                                .with_u64("count", u64::from(partial.count))
                                .with_str("reason", "fbcast")
                                .with_str("from", &from.to_string())
                                .with_u64("node", sw.node().index() as u64),
                        );
                    }
                    let latency = SimDuration::from_nanos(0);
                    self.emit_completed(sw, partial, latency);
                }
            }
            ControlMessage::Help { seg } => {
                let served = if let Some(cached) = self.accel.last_result(seg) {
                    let reply = PendingEmit::HelpReply {
                        seg: cached.clone(),
                        to: from,
                    };
                    self.stats.help_served += 1;
                    self.obs(sw).help_served.inc();
                    self.schedule(sw, SimDuration::from_nanos(0), reply);
                    true
                } else {
                    self.obs(sw).help_missed.inc();
                    false
                };
                if let Some(trace) = sw.trace() {
                    trace.record(
                        TraceEvent::new(sw.now().as_nanos(), "switch.help")
                            .with_u64("round", u64::from(seg_round(seg)))
                            .with_u64("seg", seg_index(seg))
                            .with_str("from", &from.to_string())
                            .with_u64("served", u64::from(served))
                            .with_u64("node", sw.node().index() as u64),
                    );
                }
            }
            ControlMessage::Halt => {
                // Relay the suspension to every child.
                let pkt = Packet::udp(
                    self.cfg.switch_ip,
                    RESULT_BROADCAST_IP,
                    ISWITCH_UDP_PORT,
                    ISWITCH_UDP_PORT,
                    TOS_CONTROL,
                )
                .with_payload(ControlMessage::Halt.encode());
                let (last, rest) = self
                    .cfg
                    .child_ports
                    .split_last()
                    .expect("asserted non-empty in new()");
                for &port in rest {
                    sw.send_port(port, pkt.clone());
                }
                sw.send_port(*last, pkt);
            }
            ControlMessage::Ack { .. } => {
                // Acks terminate at the switch.
            }
        }
    }
}

impl SwitchExtension for IswitchExtension {
    fn on_packet(
        &mut self,
        sw: &mut SwitchServices<'_, '_>,
        in_port: PortId,
        pkt: Packet,
    ) -> ExtAction {
        // Classification ignores the ECN bits: an egress queue may have
        // CE-marked the packet in flight without changing its protocol tag.
        match dscp(pkt.ip.tos) {
            TOS_DATA => {
                self.handle_data(sw, in_port, &pkt);
                ExtAction::Consumed
            }
            TOS_CONTROL => {
                self.handle_control(sw, &pkt);
                ExtAction::Consumed
            }
            _ => {
                self.stats.passed_through += 1;
                self.obs(sw).passed_through.inc();
                ExtAction::Forward(pkt)
            }
        }
    }

    fn on_timer(&mut self, sw: &mut SwitchServices<'_, '_>, token: u64) {
        if token == SWEEP_TOKEN {
            self.sweep_stale(sw);
            return;
        }
        if token == FAULT_RESET_TOKEN {
            self.accel.reset();
            self.round_open.clear();
            self.last_arrival.clear();
            self.held.clear();
            self.pending.clear();
            self.ecn_seen.clear();
            // `sweep_armed` stays as-is: an in-flight sweep timer cannot be
            // recalled, and letting it run keeps a single sweep chain alive.
            self.stats.fault_resets += 1;
            if let Some(trace) = sw.trace() {
                trace.record(
                    TraceEvent::new(sw.now().as_nanos(), "switch.fault_reset")
                        .with_u64("node", sw.node().index() as u64),
                );
            }
            return;
        }
        let Some(emit) = self.pending.remove(&token) else {
            return;
        };
        match emit {
            PendingEmit::Broadcast { seg, ce } => self.broadcast_down(sw, &seg, ce),
            PendingEmit::Upward { seg, ce } => {
                let AggregationRole::Intermediate { uplink } = self.cfg.role else {
                    unreachable!("upward emission only scheduled on intermediates");
                };
                let mut pkt = self.data_packet(UPSTREAM_IP, &seg);
                if ce {
                    pkt.mark_ecn_ce();
                    self.stats.ecn_echoed += 1;
                }
                sw.send_port(uplink, pkt);
                self.stats.upward_forwards += 1;
                self.obs(sw).upward_forwards.inc();
            }
            PendingEmit::HelpReply { seg, to } => {
                let pkt = self.data_packet(to, &seg);
                let _ = sw.send_routed(pkt);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
