//! The in-switch aggregation accelerator (paper §3.3, Fig. 7).
//!
//! Models the "bump-in-the-wire" datapath the paper synthesizes on the
//! NetFPGA-SUME: a Seg decoder feeding per-segment aggregation counters, an
//! address generator, BRAM aggregation buffers, and a bank of parallel
//! 32-bit floating-point adders on the internal AXI4-Stream bus (256 bits
//! per cycle at 200 MHz ⇒ eight f32 adders).
//!
//! Functionally the accelerator sums payloads of packets sharing a `Seg`
//! number **on the fly** (Fig. 8b): each arriving packet is accumulated
//! immediately, and once a segment's counter reaches the aggregation
//! threshold `H`, the aggregated segment is emitted, its buffer zeroed, and
//! its counter reset. Timing-wise, every ingested packet occupies the
//! datapath for `ceil(payload_bits / bus_bits)` cycles plus a fixed
//! pipeline depth, which the latency model converts to wall-clock time.

use std::collections::HashMap;

use iswitch_netsim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::protocol::codec::{accumulate_f32, AccEffects, CodecKind, WireAcc};
use crate::protocol::{DataSegment, SegmentMeta};

/// Slowdown of the fallback-to-host path relative to the line-rate
/// datapath. A contribution that cannot get an aggregation slot crosses
/// the switch-local PCIe bus and is summed by the switch CPU in software;
/// DMA setup plus a memory-bound software loop costs roughly an order of
/// magnitude more than streaming through the adder bank, so the host path
/// charges the datapath latency times this factor.
pub const HOST_PATH_LATENCY_FACTOR: u64 = 16;

/// Hardware parameters of the accelerator (defaults follow §3.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Internal bus width in bits per cycle (NetFPGA AXI4-Stream: 256).
    pub bus_bits: u32,
    /// Datapath clock in Hz (NetFPGA reference design: 200 MHz).
    pub clock_hz: u64,
    /// Fixed pipeline depth in cycles (separator, decoder, output concat).
    pub pipeline_cycles: u32,
    /// On-chip buffer budget in bytes (BRAM). The paper reports the
    /// accelerator consumes 44.5% of the Virtex-7's BRAM; the default here
    /// is the corresponding ~23 Mb ≈ 2.9 MB budget, rounded.
    pub buffer_bytes: usize,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            bus_bits: 256,
            clock_hz: 200_000_000,
            pipeline_cycles: 8,
            buffer_bytes: 3 << 20,
        }
    }
}

impl AcceleratorConfig {
    /// Number of parallel f32 adders (one bus beat of elements).
    pub fn adders(&self) -> u32 {
        self.bus_bits / 32
    }

    /// Wall-clock occupancy of the datapath for one packet carrying
    /// `payload_bytes` of gradient data.
    pub fn packet_latency(&self, payload_bytes: usize) -> SimDuration {
        let bursts = (payload_bytes as u64 * 8).div_ceil(u64::from(self.bus_bits));
        let cycles = bursts + u64::from(self.pipeline_cycles);
        SimDuration::from_nanos(cycles * 1_000_000_000 / self.clock_hz)
    }
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AcceleratorStats {
    /// Data packets ingested.
    pub packets_in: u64,
    /// Aggregated segments emitted (threshold reached).
    pub segments_emitted: u64,
    /// Peak bytes of partial-segment buffers resident at once.
    pub peak_buffer_bytes: usize,
    /// Partial segments flushed by `FBcast`.
    pub forced_broadcasts: u64,
    /// Contributions dropped because the partial-segment window had no
    /// BRAM left for a new round. Loss recovery (worker `FBcast` + the
    /// stale-round sweep) heals these like any other lost contribution.
    pub bram_drops: u64,
    /// Full `Reset` operations.
    pub resets: u64,
    /// Total datapath busy cycles (for utilization studies).
    pub busy_cycles: u64,
    /// Accumulator elements clamped at the saturating-add rails across all
    /// ingests — nonzero means the quantized aggregate silently lost
    /// magnitude (see [`crate::AccEffects`]).
    #[serde(default)]
    pub codec_saturations: u64,
    /// Accumulator exponent rebases (fixed-point/block-float): partial sums
    /// shifted down to a coarser scale, discarding low-order bits.
    #[serde(default)]
    pub codec_rebases: u64,
    /// New rounds refused a slot by the tenant grant (slots or bytes).
    /// With the host fallback enabled the contribution still lands — via
    /// the slow path — so a denial is a latency event, not a loss.
    #[serde(default)]
    pub slot_denials: u64,
    /// Contributions accumulated through the fallback-to-host path.
    #[serde(default)]
    pub fallback_contributions: u64,
    /// Rounds completed (or force-flushed) through the host path.
    #[serde(default)]
    pub fallback_rounds: u64,
    /// Slots leaked by the seeded slot-leak bug (never returned to the
    /// free list; their bytes stay resident). Diagnostic only.
    #[serde(default)]
    pub leaked_slots: u64,
}

/// Static resource accounting — the reproduction's analog of the paper's
/// FPGA utilization table (§3.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Parallel f32 adders instantiated.
    pub adders: u32,
    /// Aggregation-buffer bytes in use for the configured segment count.
    pub buffer_bytes_used: usize,
    /// Configured BRAM budget in bytes.
    pub buffer_bytes_budget: usize,
    /// Counter bits (one 16-bit counter per segment).
    pub counter_bits: usize,
}

/// The in-switch aggregation engine.
///
/// One instance lives inside each participating switch. It is purely
/// functional plus a latency model; wiring into the network (broadcast,
/// hierarchy, control messages) lives in [`crate::IswitchExtension`].
///
/// # Examples
///
/// ```
/// use iswitch_core::{Accelerator, AcceleratorConfig, DataSegment};
///
/// let mut accel = Accelerator::new(AcceleratorConfig::default(), 1, 2);
/// let a = DataSegment { seg: 0, count: 1, values: vec![1.0, 2.0] };
/// let b = DataSegment { seg: 0, count: 1, values: vec![10.0, 20.0] };
/// assert!(accel.ingest(&a).0.is_none());
/// let (done, _latency) = accel.ingest(&b);
/// assert_eq!(done.unwrap().values, vec![11.0, 22.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: AcceleratorConfig,
    threshold: u16,
    num_segments: usize,
    /// The aggregation format this instance's datapath is configured for.
    /// One codec per job (the flexible-switch per-job knob): slots hold the
    /// codec's native accumulator and payloads parse under its layout.
    codec: CodecKind,
    /// Maps the full (round-tagged) `Seg` value of each open round to its
    /// dense slot in `slots` — the SwitchML-style pool layout: one hash
    /// lookup per packet resolves buffer, contribution counter, and worker
    /// count together, instead of the three parallel maps this replaced.
    index: HashMap<u64, u32>,
    /// Aggregation state for open rounds, indexed by the dense slot ids in
    /// `index`/`free`. A slot is resident only between a round's first
    /// contribution and its completion. On-the-fly aggregation frees each
    /// slot the moment its aggregate is emitted, so the BRAM footprint
    /// tracks the *arrival skew window*, not the full gradient vector —
    /// that is how a 6.41 MB DQN model fits the switch's ~3 MB of BRAM.
    slots: Vec<Slot>,
    /// Recycled slot ids (LIFO, so the most recently touched — and thus
    /// cache-warm — slot is reused first).
    free: Vec<u32>,
    resident_bytes: usize,
    /// Cache of the last emitted aggregate per `Seg`, serving `Help`
    /// retransmission requests for lost result packets. Held in the switch
    /// CPU's DRAM (control plane), not BRAM.
    last_results: HashMap<u64, DataSegment>,
    /// Open-round cap granted to this tenant's share of the pool for the
    /// current arbitration epoch. `None` (the single-tenant default) means
    /// the whole pool, reproducing the legacy behavior bit for bit.
    slot_grant: Option<u32>,
    /// BRAM-byte cap granted for the current epoch; `None` means the full
    /// configured budget. The effective budget is the minimum of the two.
    byte_grant: Option<usize>,
    /// When set, a round denied a slot is punted to the host path (switch
    /// CPU, DRAM-resident software accumulator) instead of being dropped:
    /// slower by [`HOST_PATH_LATENCY_FACTOR`], but numerically identical.
    host_fallback: bool,
    /// Open host-path rounds, keyed like `index`. Lives in switch-CPU
    /// DRAM, so it is not charged against the BRAM budget.
    fallback: HashMap<u64, HostSlot>,
    /// Seeded bug for the chaos harness: completed rounds "forget" to
    /// return their slot to the free list, so occupancy and resident bytes
    /// only ever grow. See the I6 isolation tests.
    slot_leak_bug: bool,
    /// High-water mark of concurrently open rounds (slots + host path)
    /// since the last [`Accelerator::take_demand_peak`] — the demand
    /// signal the multi-tenant arbiter reads at each epoch barrier.
    demand_peak: u32,
    stats: AcceleratorStats,
}

/// Per-open-round aggregation state: the BRAM buffer plus the hardware's
/// per-segment counters, kept together so one packet touches one slot.
#[derive(Debug, Clone)]
struct Slot {
    /// Partial sums for this round, in the codec's native representation.
    acc: WireAcc,
    /// Contributions (packets) received — compared against `H`.
    contributions: u16,
    /// Total workers represented (sums the incoming `count` fields) —
    /// becomes the emitted result's `count` metadata.
    workers: u16,
}

/// An open round on the fallback-to-host path. Same codec-native
/// accumulator as a BRAM slot — the switch CPU runs the identical
/// arithmetic in software, so a round completes with the same values
/// whichever path it took — but resident in DRAM and an order of
/// magnitude slower per packet.
#[derive(Debug, Clone)]
struct HostSlot {
    acc: WireAcc,
    contributions: u16,
    workers: u16,
}

/// One arriving contribution, either as decoded floats or as a raw wire
/// payload (headers included — the codec parses its own sub-header).
/// Keeping the two behind one ingest path guarantees both charge latency
/// through the same model and land in the same accumulator.
enum Contribution<'a> {
    /// Decoded f32 values (the owned [`DataSegment`] path).
    Floats(&'a [f32]),
    /// A full wire payload in the accelerator's codec format.
    Wire(&'a [u8]),
}

impl Accelerator {
    /// An accelerator for gradient vectors of `num_segments` segments,
    /// aggregating `threshold` contributions per segment. The final segment
    /// may be shorter than [`FLOATS_PER_SEGMENT`]; buffers size themselves
    /// on first arrival.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero, `num_segments` is zero, or the buffer
    /// requirement exceeds the configured BRAM budget.
    pub fn new(cfg: AcceleratorConfig, num_segments: usize, threshold: u16) -> Self {
        Self::with_codec(cfg, num_segments, threshold, CodecKind::F32)
    }

    /// An accelerator whose datapath aggregates in `codec`'s native
    /// representation. [`Accelerator::new`] is `with_codec(.., F32)`, the
    /// paper's raw-float datapath, bit-identical to the pre-codec build.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Accelerator::new`].
    pub fn with_codec(
        cfg: AcceleratorConfig,
        num_segments: usize,
        threshold: u16,
        codec: CodecKind,
    ) -> Self {
        assert!(threshold > 0, "aggregation threshold H must be positive");
        assert!(num_segments > 0, "at least one segment required");
        assert!(
            codec.acc_bytes(codec.elems_per_segment()) <= cfg.buffer_bytes,
            "BRAM budget smaller than a single segment"
        );
        Accelerator {
            cfg,
            threshold,
            num_segments,
            codec,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            resident_bytes: 0,
            last_results: HashMap::new(),
            slot_grant: None,
            byte_grant: None,
            host_fallback: false,
            fallback: HashMap::new(),
            slot_leak_bug: false,
            demand_peak: 0,
            stats: AcceleratorStats::default(),
        }
    }

    /// The configured aggregation threshold `H`.
    pub fn threshold(&self) -> u16 {
        self.threshold
    }

    /// The aggregation format this datapath is configured for.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Changes `H` (the `SetH` control action). Takes effect for segments
    /// that have not yet completed.
    pub fn set_threshold(&mut self, h: u16) {
        assert!(h > 0, "aggregation threshold H must be positive");
        self.threshold = h;
    }

    /// Number of segments per gradient vector.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Bytes of partial-segment buffers currently resident in BRAM.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// `Seg` values (round-tagged) currently holding a partial round, on
    /// either the BRAM or the host path.
    pub fn partial_segments(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .index
            .keys()
            .chain(self.fallback.keys())
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// Sets this epoch's tenant grant: at most `slots` concurrently open
    /// BRAM rounds and `bytes` resident bytes (`None` = uncapped; the
    /// hardware budget still applies). Called by the multi-tenant arbiter
    /// at each epoch barrier; single-tenant runs never call it.
    pub fn set_grant(&mut self, slots: Option<u32>, bytes: Option<usize>) {
        self.slot_grant = slots;
        self.byte_grant = bytes;
    }

    /// Routes slot-denied rounds through the host path (slower, correct)
    /// instead of dropping them. Multi-tenant runs enable this; the
    /// single-tenant default keeps the legacy drop-on-overflow behavior.
    pub fn set_host_fallback(&mut self, on: bool) {
        self.host_fallback = on;
    }

    /// Arms the seeded slot-leak bug: completed rounds keep their slot and
    /// bytes forever. Exists solely so the chaos harness can prove the I6
    /// isolation invariant trips when a tenant misbehaves.
    pub fn set_slot_leak_bug(&mut self, on: bool) {
        self.slot_leak_bug = on;
    }

    /// Rounds currently occupying BRAM slots (including any leaked by the
    /// seeded bug — a leak holds hardware, so it counts as occupancy).
    pub fn open_rounds(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Rounds currently open on the fallback-to-host path.
    pub fn host_rounds(&self) -> usize {
        self.fallback.len()
    }

    /// Returns and rearms the demand high-water mark: the peak number of
    /// concurrently open rounds (BRAM + host) since the previous call.
    /// The arbiter reads this at every epoch barrier to size next epoch's
    /// grants; the mark restarts from the current occupancy.
    pub fn take_demand_peak(&mut self) -> u32 {
        let peak = self.demand_peak;
        self.demand_peak = (self.open_rounds() + self.fallback.len()) as u32;
        peak
    }

    /// Running statistics.
    pub fn stats(&self) -> &AcceleratorStats {
        &self.stats
    }

    /// Static resource accounting (the FPGA-utilization analog).
    pub fn resources(&self) -> ResourceReport {
        ResourceReport {
            adders: self.cfg.adders(),
            buffer_bytes_used: self.stats.peak_buffer_bytes,
            buffer_bytes_budget: self.cfg.buffer_bytes,
            counter_bits: self.num_segments * 16,
        }
    }

    fn charge(&mut self, payload_bytes: usize) -> SimDuration {
        let latency = self.cfg.packet_latency(payload_bytes);
        let bursts = (payload_bytes as u64 * 8).div_ceil(u64::from(self.cfg.bus_bits));
        self.stats.busy_cycles += bursts + u64::from(self.cfg.pipeline_cycles);
        latency
    }

    /// Ingests one contribution packet, accumulating on the fly.
    ///
    /// Returns the completed aggregate (when this arrival made the counter
    /// reach `H`) and the datapath latency charged to this packet.
    ///
    /// # Panics
    ///
    /// Panics if the segment index is out of range, a segment arrives with
    /// an inconsistent length, or (for quantized codecs) a value is
    /// non-finite — the floats path re-encodes through the codec, and
    /// quantized formats reject NaN/Inf.
    pub fn ingest(&mut self, seg: &DataSegment) -> (Option<DataSegment>, SimDuration) {
        self.ingest_inner(
            seg.seg,
            seg.count,
            seg.values.len(),
            Contribution::Floats(&seg.values),
        )
    }

    /// Ingests one contribution straight from its encoded UDP payload
    /// (`meta` from the codec's `decode_meta`, `payload` the full wire
    /// payload including all headers).
    ///
    /// Semantically identical to decoding into a [`DataSegment`] and
    /// calling [`Accelerator::ingest`] — same latency model, same
    /// accumulator — but the per-packet value vector is never materialized,
    /// which is what the hardware does too: adders read bus beats, not heap
    /// allocations. The payload may carry the codec's narrow contribution
    /// or wide result encoding (hierarchical aggregation feeds parent
    /// switches with wide child aggregates).
    ///
    /// # Panics
    ///
    /// Panics if the segment index is out of range, the length is
    /// inconsistent, or the payload does not parse under this
    /// accelerator's codec.
    pub fn ingest_wire(
        &mut self,
        meta: SegmentMeta,
        payload: &[u8],
    ) -> (Option<DataSegment>, SimDuration) {
        self.ingest_inner(meta.seg, meta.count, meta.len, Contribution::Wire(payload))
    }

    fn ingest_inner(
        &mut self,
        idx: u64,
        count: u16,
        len: usize,
        values: Contribution<'_>,
    ) -> (Option<DataSegment>, SimDuration) {
        self.stats.packets_in += 1;
        let codec = self.codec.codec();
        // Datapath occupancy follows the bytes actually streamed: the real
        // payload length on the wire path, the codec's contribution size on
        // the floats path. For f32 both equal the legacy `len * 4 + 8`.
        let payload_bytes = match values {
            Contribution::Floats(_) => codec.contribution_bytes(len),
            Contribution::Wire(payload) => payload.len(),
        };
        let latency = self.charge(payload_bytes);

        let slot_id = match self.index.get(&idx) {
            Some(&slot_id) => slot_id,
            None => {
                // A round that already fell back stays on the host path:
                // its accumulator lives in DRAM, so later contributions
                // must land there too.
                if self.fallback.contains_key(&idx) {
                    return self.ingest_host(idx, count, len, values, latency);
                }
                // Opening a new round requires BRAM for its buffer and a
                // slot under the tenant grant. When either is exhausted
                // the round falls back to the host path if enabled;
                // otherwise the packet is dropped, exactly as the
                // hardware would. (Drops genuinely happen when loss
                // desynchronizes workers by an iteration: N-1 full vectors
                // may contend for a buffer that holds less than one.)
                let acc_bytes = self.codec.acc_bytes(len);
                let byte_budget = self
                    .byte_grant
                    .map_or(self.cfg.buffer_bytes, |g| g.min(self.cfg.buffer_bytes));
                let over_slots = self
                    .slot_grant
                    .is_some_and(|g| self.open_rounds() >= g as usize);
                if over_slots || self.resident_bytes + acc_bytes > byte_budget {
                    if self.host_fallback {
                        self.stats.slot_denials += 1;
                        return self.ingest_host(idx, count, len, values, latency);
                    }
                    self.stats.bram_drops += 1;
                    return (None, latency);
                }
                self.resident_bytes += acc_bytes;
                let slot_id = match self.free.pop() {
                    Some(recycled) => {
                        let slot = &mut self.slots[recycled as usize];
                        slot.acc.reset(len);
                        slot.contributions = 0;
                        slot.workers = 0;
                        recycled
                    }
                    None => {
                        self.slots.push(Slot {
                            acc: codec.new_acc(len),
                            contributions: 0,
                            workers: 0,
                        });
                        (self.slots.len() - 1) as u32
                    }
                };
                self.index.insert(idx, slot_id);
                self.note_demand();
                slot_id
            }
        };
        let slot = &mut self.slots[slot_id as usize];
        assert_eq!(
            slot.acc.len(),
            len,
            "segment {idx:#x} length changed between contributions"
        );
        let effects = match values {
            // The legacy owned-floats fast path: f32 accumulators add the
            // decoded values directly, bit-identically to the wire path.
            Contribution::Floats(src) => {
                if let WireAcc::F32(sums) = &mut slot.acc {
                    accumulate_f32(sums, src);
                    AccEffects::default()
                } else {
                    // Quantized codecs have no direct floats path in
                    // hardware either — the contribution passes through the
                    // codec's narrow encoding, quantization error included.
                    let payload = codec
                        .encode_contribution(idx, src)
                        .expect("finite contribution values");
                    codec
                        .accumulate(&mut slot.acc, &payload)
                        .expect("self-encoded payload accumulates")
                }
            }
            Contribution::Wire(payload) => codec
                .accumulate(&mut slot.acc, payload)
                .expect("payload matches the accelerator codec"),
        };
        self.stats.codec_saturations += effects.saturations;
        self.stats.codec_rebases += effects.rebases;
        if self.resident_bytes > self.stats.peak_buffer_bytes {
            self.stats.peak_buffer_bytes = self.resident_bytes;
        }
        slot.contributions = slot.contributions.saturating_add(1);
        slot.workers = slot.workers.saturating_add(count.max(1));

        if slot.contributions >= self.threshold {
            (Some(self.complete(idx)), latency)
        } else {
            (None, latency)
        }
    }

    /// Accumulates one contribution into the DRAM-resident host-path slot
    /// for `idx`, creating it on first arrival. Same codec arithmetic as
    /// the BRAM path — the aggregate is numerically identical — but every
    /// packet pays [`HOST_PATH_LATENCY_FACTOR`]× the datapath latency.
    fn ingest_host(
        &mut self,
        idx: u64,
        count: u16,
        len: usize,
        values: Contribution<'_>,
        datapath_latency: SimDuration,
    ) -> (Option<DataSegment>, SimDuration) {
        let latency = datapath_latency * HOST_PATH_LATENCY_FACTOR;
        let codec = self.codec.codec();
        let slot = self.fallback.entry(idx).or_insert_with(|| HostSlot {
            acc: codec.new_acc(len),
            contributions: 0,
            workers: 0,
        });
        assert_eq!(
            slot.acc.len(),
            len,
            "segment {idx:#x} length changed between contributions"
        );
        let effects = match values {
            Contribution::Floats(src) => {
                if let WireAcc::F32(sums) = &mut slot.acc {
                    accumulate_f32(sums, src);
                    AccEffects::default()
                } else {
                    let payload = codec
                        .encode_contribution(idx, src)
                        .expect("finite contribution values");
                    codec
                        .accumulate(&mut slot.acc, &payload)
                        .expect("self-encoded payload accumulates")
                }
            }
            Contribution::Wire(payload) => codec
                .accumulate(&mut slot.acc, payload)
                .expect("payload matches the accelerator codec"),
        };
        self.stats.codec_saturations += effects.saturations;
        self.stats.codec_rebases += effects.rebases;
        self.stats.fallback_contributions += 1;
        slot.contributions = slot.contributions.saturating_add(1);
        slot.workers = slot.workers.saturating_add(count.max(1));
        if slot.contributions >= self.threshold {
            self.note_demand();
            (Some(self.complete_host(idx)), latency)
        } else {
            self.note_demand();
            (None, latency)
        }
    }

    /// Updates the demand high-water mark after a round opens.
    fn note_demand(&mut self) {
        let open = (self.open_rounds() + self.fallback.len()) as u32;
        if open > self.demand_peak {
            self.demand_peak = open;
        }
    }

    fn complete(&mut self, idx: u64) -> DataSegment {
        let slot_id = self
            .index
            .remove(&idx)
            .expect("completing a resident segment");
        let slot = &mut self.slots[slot_id as usize];
        let freed = slot.acc.resident_bytes();
        // f32 slots hand their buffer to the result without a copy (the
        // legacy path); integer accumulators decode to fresh f32 sums.
        let values = match &mut slot.acc {
            WireAcc::F32(sums) => std::mem::take(sums),
            acc => self.codec.codec().decode_acc(acc),
        };
        let count = slot.workers;
        if self.slot_leak_bug {
            // Seeded bug: the slot never returns to the free list and its
            // bytes stay accounted as resident, so occupancy only grows.
            self.stats.leaked_slots += 1;
        } else {
            self.free.push(slot_id);
            self.resident_bytes -= freed;
        }
        self.stats.segments_emitted += 1;
        let result = DataSegment {
            seg: idx,
            count,
            values,
        };
        self.last_results.insert(idx, result.clone());
        result
    }

    /// Emits and retires the host-path round `idx`.
    fn complete_host(&mut self, idx: u64) -> DataSegment {
        let mut slot = self
            .fallback
            .remove(&idx)
            .expect("completing a resident host-path round");
        let values = match &mut slot.acc {
            WireAcc::F32(sums) => std::mem::take(sums),
            acc => self.codec.codec().decode_acc(acc),
        };
        self.stats.segments_emitted += 1;
        self.stats.fallback_rounds += 1;
        let result = DataSegment {
            seg: idx,
            count: slot.workers,
            values,
        };
        self.last_results.insert(idx, result.clone());
        result
    }

    /// Forces out the partial aggregate of `seg` (the `FBcast` control
    /// action), if any contributions have arrived — on either the BRAM or
    /// the host path. The buffer and counter reset either way.
    pub fn force_broadcast(&mut self, seg: u64) -> Option<DataSegment> {
        // A resident slot always holds at least one contribution (slots are
        // created by the ingest that first contributes).
        if self.index.contains_key(&seg) {
            self.stats.forced_broadcasts += 1;
            Some(self.complete(seg))
        } else if self.fallback.contains_key(&seg) {
            self.stats.forced_broadcasts += 1;
            Some(self.complete_host(seg))
        } else {
            None
        }
    }

    /// The most recently emitted aggregate for `seg`, serving `Help`
    /// retransmissions of lost result packets.
    pub fn last_result(&self, seg: u64) -> Option<&DataSegment> {
        self.last_results.get(&seg)
    }

    /// Clears all buffers, counters, and result caches (the `Reset`
    /// control action).
    pub fn reset(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.resident_bytes = 0;
        self.last_results.clear();
        self.fallback.clear();
        self.demand_peak = 0;
        self.stats.resets += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(idx: u64, values: Vec<f32>) -> DataSegment {
        DataSegment {
            seg: idx,
            count: 1,
            values,
        }
    }

    #[test]
    fn aggregates_exactly_h_contributions() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 2, 3);
        assert!(a.ingest(&seg(0, vec![1.0])).0.is_none());
        assert!(a.ingest(&seg(0, vec![2.0])).0.is_none());
        let (done, _) = a.ingest(&seg(0, vec![4.0]));
        let done = done.expect("third contribution completes");
        assert_eq!(done.values, vec![7.0]);
        assert_eq!(done.count, 3);
        assert_eq!(a.stats().segments_emitted, 1);
    }

    #[test]
    fn buffer_resets_between_rounds() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 1, 2);
        a.ingest(&seg(0, vec![1.0, 1.0]));
        a.ingest(&seg(0, vec![1.0, 1.0]));
        a.ingest(&seg(0, vec![5.0, 5.0]));
        let (done, _) = a.ingest(&seg(0, vec![6.0, 6.0]));
        assert_eq!(done.unwrap().values, vec![11.0, 11.0]);
    }

    #[test]
    fn segments_aggregate_independently() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 3, 2);
        a.ingest(&seg(0, vec![1.0]));
        a.ingest(&seg(2, vec![9.0]));
        let (done, _) = a.ingest(&seg(2, vec![1.0]));
        assert_eq!(done.unwrap().values, vec![10.0]);
        // Segment 0 is still partial.
        let (done, _) = a.ingest(&seg(0, vec![1.0]));
        assert_eq!(done.unwrap().values, vec![2.0]);
    }

    #[test]
    fn latency_model_matches_cycle_math() {
        let cfg = AcceleratorConfig::default();
        // A full segment: 366*4+8 = 1472 bytes = 11,776 bits -> 46 bursts.
        // 46 + 8 pipeline cycles at 200 MHz (5 ns) = 270 ns.
        assert_eq!(cfg.packet_latency(1472), SimDuration::from_nanos(270));
        // Empty payload still pays the pipeline depth.
        assert_eq!(cfg.packet_latency(0), SimDuration::from_nanos(40));
        assert_eq!(cfg.adders(), 8);
    }

    #[test]
    fn force_broadcast_flushes_partials() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 1, 4);
        a.ingest(&seg(0, vec![3.0]));
        a.ingest(&seg(0, vec![4.0]));
        let flushed = a.force_broadcast(0).expect("partial flushed");
        assert_eq!(flushed.values, vec![7.0]);
        assert_eq!(flushed.count, 2);
        // Nothing left to flush.
        assert!(a.force_broadcast(0).is_none());
        // Counter restarted: needs 4 fresh contributions again.
        a.ingest(&seg(0, vec![1.0]));
        assert!(a.force_broadcast(0).is_some());
    }

    #[test]
    fn aggregated_contributions_carry_their_count() {
        // Hierarchical aggregation: the core aggregates one contribution
        // per rack (H = 2 here), but the emitted result's count metadata
        // sums the workers each rack represents.
        let mut core = Accelerator::new(AcceleratorConfig::default(), 1, 2);
        let rack_a = DataSegment {
            seg: 0,
            count: 3,
            values: vec![30.0],
        };
        let rack_b = DataSegment {
            seg: 0,
            count: 3,
            values: vec![12.0],
        };
        assert!(core.ingest(&rack_a).0.is_none());
        let (done, _) = core.ingest(&rack_b);
        let done = done.expect("both racks arrived");
        assert_eq!(done.values, vec![42.0]);
        assert_eq!(done.count, 6);
    }

    #[test]
    fn help_served_from_result_cache() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 1, 1);
        assert!(a.last_result(0).is_none());
        a.ingest(&seg(0, vec![5.0]));
        assert_eq!(a.last_result(0).unwrap().values, vec![5.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 2, 2);
        a.ingest(&seg(0, vec![1.0]));
        a.ingest(&seg(1, vec![1.0]));
        a.ingest(&seg(1, vec![1.0]));
        a.reset();
        assert!(a.last_result(1).is_none());
        assert!(a.force_broadcast(0).is_none());
        assert_eq!(a.stats().resets, 1);
        // After reset a segment may arrive with a different length.
        let (done, _) = a.ingest(&seg(0, vec![1.0, 2.0, 3.0]));
        assert!(done.is_none());
    }

    #[test]
    fn set_threshold_takes_effect() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 1, 4);
        a.ingest(&seg(0, vec![1.0]));
        a.set_threshold(2);
        let (done, _) = a.ingest(&seg(0, vec![1.0]));
        assert!(done.is_some());
    }

    #[test]
    fn window_overflow_drops_new_rounds() {
        // Threshold 2 but only one contribution per segment: every segment
        // stays partial; once the budget is exhausted new rounds drop.
        let cfg = AcceleratorConfig {
            buffer_bytes: 2_928,
            ..AcceleratorConfig::default()
        };
        let mut a = Accelerator::new(cfg, 100, 2);
        for i in 0..100 {
            let _ = a.ingest(&seg(i, vec![0.0; 366]));
        }
        // 2,928 bytes = two 366-f32 buffers; the other 98 packets dropped.
        assert_eq!(a.stats().bram_drops, 98);
        assert_eq!(a.resident_bytes(), 2_928);
        // Accumulating into an existing round is still fine and completes.
        let (done, _) = a.ingest(&seg(0, vec![1.0; 366]));
        assert!(done.is_some());
    }

    #[test]
    fn window_stays_small_when_segments_complete() {
        // Two interleaved workers: each segment completes right after both
        // contributions, so at most one segment is ever resident.
        let cfg = AcceleratorConfig {
            buffer_bytes: 4_096,
            ..AcceleratorConfig::default()
        };
        let mut a = Accelerator::new(cfg, 1_000, 2);
        for i in 0..1_000u64 {
            let _ = a.ingest(&seg(i, vec![0.0; 366]));
            let (done, _) = a.ingest(&seg(i, vec![0.0; 366]));
            assert!(done.is_some());
        }
        assert_eq!(a.stats().peak_buffer_bytes, 366 * 4);
        assert_eq!(a.resident_bytes(), 0);
    }

    #[test]
    fn slot_grant_denies_and_host_path_completes() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 4, 2);
        a.set_grant(Some(1), None);
        a.set_host_fallback(true);
        // Segment 0 takes the single granted slot and stays open.
        let (done, fast) = a.ingest(&seg(0, vec![1.0]));
        assert!(done.is_none());
        // Segment 1 is denied and opens on the host path instead.
        let (done, slow) = a.ingest(&seg(1, vec![2.0]));
        assert!(done.is_none());
        assert_eq!(slow, fast * HOST_PATH_LATENCY_FACTOR);
        // Segment 0 completes on the fast path, freeing its slot …
        assert!(a.ingest(&seg(0, vec![1.0])).0.is_some());
        // … but the fallen-back round stays on the host path, and its
        // aggregate is numerically identical to the BRAM path.
        let (done, _) = a.ingest(&seg(1, vec![3.0]));
        assert_eq!(done.unwrap().values, vec![5.0]);
        assert_eq!(a.stats().slot_denials, 1);
        assert_eq!(a.stats().fallback_contributions, 2);
        assert_eq!(a.stats().fallback_rounds, 1);
        assert_eq!(a.stats().bram_drops, 0);
        assert_eq!(a.host_rounds(), 0);
    }

    #[test]
    fn grant_without_fallback_still_drops() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 2, 2);
        a.set_grant(Some(1), None);
        a.ingest(&seg(0, vec![1.0]));
        let (done, _) = a.ingest(&seg(1, vec![1.0]));
        assert!(done.is_none());
        assert_eq!(a.stats().bram_drops, 1);
        assert_eq!(a.stats().slot_denials, 0);
    }

    #[test]
    fn force_broadcast_flushes_host_path_partials() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 2, 4);
        a.set_grant(Some(1), None);
        a.set_host_fallback(true);
        a.ingest(&seg(0, vec![1.0]));
        a.ingest(&seg(1, vec![7.0]));
        assert_eq!(a.host_rounds(), 1);
        assert_eq!(a.partial_segments(), vec![0, 1]);
        let flushed = a.force_broadcast(1).expect("host partial flushed");
        assert_eq!(flushed.values, vec![7.0]);
        assert_eq!(a.stats().fallback_rounds, 1);
        assert_eq!(a.last_result(1).unwrap().values, vec![7.0]);
    }

    #[test]
    fn demand_peak_tracks_and_rearms() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 4, 2);
        a.ingest(&seg(0, vec![1.0]));
        a.ingest(&seg(1, vec![1.0]));
        a.ingest(&seg(0, vec![1.0])); // completes segment 0
        assert_eq!(a.take_demand_peak(), 2);
        // Rearmed from the current occupancy (segment 1 still open).
        assert_eq!(a.take_demand_peak(), 1);
    }

    #[test]
    fn slot_leak_bug_inflates_occupancy() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 4, 2);
        a.set_slot_leak_bug(true);
        let resident_one = {
            a.ingest(&seg(0, vec![1.0; 8]));
            a.resident_bytes()
        };
        a.ingest(&seg(0, vec![1.0; 8]));
        // The completed round leaked: occupancy and bytes never dropped.
        assert_eq!(a.open_rounds(), 1);
        assert_eq!(a.resident_bytes(), resident_one);
        assert_eq!(a.stats().leaked_slots, 1);
        a.ingest(&seg(1, vec![1.0; 8]));
        a.ingest(&seg(1, vec![1.0; 8]));
        assert_eq!(a.open_rounds(), 2);
        assert_eq!(a.resident_bytes(), 2 * resident_one);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut a = Accelerator::new(AcceleratorConfig::default(), 1, 10);
        a.ingest(&seg(0, vec![0.0; 366]));
        a.ingest(&seg(0, vec![0.0; 366]));
        assert_eq!(a.stats().busy_cycles, 2 * (46 + 8));
    }
}
