//! Error types for the iSwitch protocol.

use std::error::Error;
use std::fmt;

/// Failures while decoding iSwitch wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The packet payload was shorter than the fixed header requires.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes present.
        got: usize,
    },
    /// The control action code is not one defined in Table 2.
    UnknownAction(u8),
    /// A data payload's length is not a whole number of f32 values.
    MisalignedPayload(usize),
    /// A decoded field carried an out-of-range value.
    InvalidField(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            ProtocolError::UnknownAction(code) => write!(f, "unknown control action {code:#04x}"),
            ProtocolError::MisalignedPayload(len) => {
                write!(f, "gradient payload of {len} bytes is not f32-aligned")
            }
            ProtocolError::InvalidField(name) => write!(f, "invalid value in field `{name}`"),
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = ProtocolError::Truncated { needed: 8, got: 3 };
        assert_eq!(e.to_string(), "truncated packet: needed 8 bytes, got 3");
        assert!(ProtocolError::UnknownAction(0xFF)
            .to_string()
            .contains("0xff"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ProtocolError>();
    }
}
