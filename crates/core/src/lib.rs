//! # iswitch-core
//!
//! The core of the iSwitch (ISCA '19) reproduction — the paper's actual
//! contribution, built atop the `iswitch-netsim` substrate:
//!
//! * the **network protocol extension** (§3.2): ToS-tagged control and data
//!   packets, Table-2 control actions, and `Seg`-indexed gradient
//!   segmentation against the 1,522-byte Ethernet frame;
//! * the **in-switch aggregation accelerator** (§3.3, Fig. 7): per-segment
//!   counters and buffers with a bank of parallel f32 adders, performing
//!   *on-the-fly* aggregation at network-packet granularity (Fig. 8b), with
//!   a cycle-accurate latency model (256-bit bus @ 200 MHz);
//! * the **control plane** (Fig. 9): a membership table plus accelerator
//!   management via `Join`/`Leave`/`Reset`/`SetH`, and the lost-packet
//!   paths `FBcast`/`Help`;
//! * **hierarchical aggregation** (§3.4): ToR switches aggregate their rack
//!   locally and forward one contribution upward; the core switch
//!   aggregates rack contributions and broadcasts the global result down.
//!
//! ## Example: 4 workers aggregated in one switch
//!
//! ```
//! use iswitch_core::{Accelerator, AcceleratorConfig, segment_gradient};
//!
//! let grads: Vec<Vec<f32>> = (0..4).map(|w| vec![w as f32; 1000]).collect();
//! let segments = iswitch_core::num_segments(1000);
//! let mut accel = Accelerator::new(AcceleratorConfig::default(), segments, 4);
//!
//! let mut aggregated = Vec::new();
//! for grad in &grads {
//!     for seg in segment_gradient(grad) {
//!         if let (Some(done), _latency) = accel.ingest(&seg) {
//!             aggregated.push(done);
//!         }
//!     }
//! }
//! // 0 + 1 + 2 + 3 = 6 in every element.
//! assert!(aggregated.iter().all(|s| s.values.iter().all(|&v| v == 6.0)));
//! ```

#![warn(missing_docs)]

mod accelerator;
mod control_plane;
mod error;
mod protocol;
mod switch_ext;
mod worker;

pub use accelerator::{
    Accelerator, AcceleratorConfig, AcceleratorStats, ResourceReport, HOST_PATH_LATENCY_FACTOR,
};
pub use control_plane::{Member, MemberType, MembershipTable};
pub use error::ProtocolError;
pub use protocol::{
    decode_seg_field, dscp, is_iswitch_tos, num_quant_segments, num_segments, quantize_gradient,
    seg_index, seg_round, segment_gradient, segment_gradient_round, tag_round, topk_indices,
    AccEffects, AggregationCodec, BlockFloatCodec, CodecKind, ControlMessage, DataSegment,
    F32Codec, FixedPointCodec, GradientAssembler, QuantAccelerator, QuantConfig, QuantSegment,
    RoundAssembler, RoundInsert, SegmentMeta, TopKCodec, WireAcc, BLOCKFLOAT_ELEMS_PER_SEGMENT,
    BLOCK_ELEMS, CODEC_HEADER_BYTES, FIXED_ELEMS_PER_SEGMENT, FLOATS_PER_SEGMENT, INTS_PER_SEGMENT,
    ISWITCH_UDP_PORT, MAX_SEG_INDEX, ROUND_SHIFT, SEG_HEADER_BYTES, TOPK_DIVISOR,
    TOPK_ELEMS_PER_SEGMENT, TOS_CONTROL, TOS_DATA,
};
pub use switch_ext::{
    AggregationMode, AggregationRole, ExtensionConfig, ExtensionStats, IswitchExtension,
    FAULT_RESET_TOKEN, RESULT_BROADCAST_IP, UPSTREAM_IP,
};
pub use worker::{
    control_packet, data_packet, data_packet_wire, decode_control, decode_data, decode_data_meta,
    gradient_packets, gradient_packets_round, gradient_packets_round_codec, result_packet,
    EncodedGradient,
};
