//! Worker-side packet helpers: building gradient/control packets and
//! parsing what comes back from the switch.

use iswitch_netsim::{CausalKey, IpAddr, Packet};

use crate::protocol::{
    seg_index, seg_round, segment_gradient_round, ControlMessage, DataSegment, ISWITCH_UDP_PORT,
    TOS_CONTROL, TOS_DATA,
};
use crate::switch_ext::UPSTREAM_IP;

/// Builds the sequence of data packets carrying `grad` from a worker at
/// `src` toward its switch. One packet per segment, in segment order.
///
/// The destination address is the upstream aggregation address: iSwitch
/// switches intercept by ToS, so data packets never need a concrete
/// switch IP.
pub fn gradient_packets(src: IpAddr, grad: &[f32]) -> Vec<Packet> {
    gradient_packets_round(src, grad, 0)
}

/// Like [`gradient_packets`] with an explicit aggregation-round tag in the
/// `Seg` field (see [`crate::tag_round`]); receivers use the tag to ignore
/// stale re-broadcasts.
pub fn gradient_packets_round(src: IpAddr, grad: &[f32], round: u32) -> Vec<Packet> {
    segment_gradient_round(grad, round)
        .iter()
        .map(|seg| data_packet(src, UPSTREAM_IP, seg))
        .collect()
}

/// Builds a single data packet carrying `seg`.
///
/// The packet is stamped with a [`CausalKey`] derived from the tagged `Seg`
/// field (round and spatial segment index) plus the sender's address as the
/// producer identity, so per-hop trace events can be tied back to the unit
/// of training work the packet carries.
pub fn data_packet(src: IpAddr, dst: IpAddr, seg: &DataSegment) -> Packet {
    Packet::udp(src, dst, ISWITCH_UDP_PORT, ISWITCH_UDP_PORT, TOS_DATA)
        .with_payload(seg.encode())
        .with_cause(CausalKey {
            round: u64::from(seg_round(seg.seg)),
            segment: seg_index(seg.seg),
            worker: u64::from(src.as_u32()),
        })
}

/// Builds a control packet carrying `msg` from `src` to `dst`.
pub fn control_packet(src: IpAddr, dst: IpAddr, msg: &ControlMessage) -> Packet {
    Packet::udp(src, dst, ISWITCH_UDP_PORT, ISWITCH_UDP_PORT, TOS_CONTROL)
        .with_payload(msg.encode())
}

/// Parses an iSwitch data packet, returning `None` for anything else
/// (wrong ToS or malformed payload).
pub fn decode_data(pkt: &Packet) -> Option<DataSegment> {
    if pkt.ip.tos != TOS_DATA {
        return None;
    }
    DataSegment::decode(&pkt.payload).ok()
}

/// Parses an iSwitch control packet, returning `None` for anything else.
pub fn decode_control(pkt: &Packet) -> Option<ControlMessage> {
    if pkt.ip.tos != TOS_CONTROL {
        return None;
    }
    ControlMessage::decode(&pkt.payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FLOATS_PER_SEGMENT;

    #[test]
    fn gradient_packets_cover_the_vector_in_order() {
        let grad: Vec<f32> = (0..FLOATS_PER_SEGMENT + 5).map(|i| i as f32).collect();
        let pkts = gradient_packets(IpAddr::new(10, 0, 0, 1), &grad);
        assert_eq!(pkts.len(), 2);
        let seg0 = decode_data(&pkts[0]).unwrap();
        let seg1 = decode_data(&pkts[1]).unwrap();
        assert_eq!(seg0.seg, 0);
        assert_eq!(seg1.seg, 1);
        assert_eq!(seg0.values.len(), FLOATS_PER_SEGMENT);
        assert_eq!(seg1.values.len(), 5);
        assert_eq!(seg1.values[4], (FLOATS_PER_SEGMENT + 4) as f32);
    }

    #[test]
    fn decode_rejects_wrong_tos() {
        let grad = vec![1.0f32; 4];
        let mut pkt = gradient_packets(IpAddr::new(10, 0, 0, 1), &grad).remove(0);
        pkt.ip.tos = 0;
        assert!(decode_data(&pkt).is_none());

        let ctrl = control_packet(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 255, 1),
            &ControlMessage::Reset,
        );
        assert!(decode_control(&ctrl).is_some());
        assert!(decode_data(&ctrl).is_none());
    }
}
