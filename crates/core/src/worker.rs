//! Worker-side packet helpers: building gradient/control packets and
//! parsing what comes back from the switch.

use bytes::Bytes;
use iswitch_netsim::{CausalKey, IpAddr, Packet};

use crate::protocol::codec::{CodecKind, FixedPointCodec};
use crate::protocol::{
    dscp, encode_segment, seg_index, seg_round, tag_round, ControlMessage, DataSegment,
    SegmentMeta, FLOATS_PER_SEGMENT, ISWITCH_UDP_PORT, SEG_HEADER_BYTES, TOS_CONTROL, TOS_DATA,
};
use crate::switch_ext::UPSTREAM_IP;

/// Encodes one contribution chunk under `codec`, honoring the seeded
/// exponent-stamp bias for fixed-point (the chaos harness's codec bug; a
/// bias of zero is correct operation and the only value other codecs
/// accept a stamp for).
fn encode_codec_segment(codec: CodecKind, seg: u64, values: &[f32], exp_bias: i8) -> Bytes {
    let payload = if exp_bias != 0 && codec == CodecKind::FixedPoint {
        FixedPointCodec.encode_contribution_biased(seg, values, exp_bias)
    } else {
        codec.codec().encode_contribution(seg, values)
    };
    payload.expect("gradient values are finite")
}

/// Builds the sequence of data packets carrying `grad` from a worker at
/// `src` toward its switch. One packet per segment, in segment order.
///
/// The destination address is the upstream aggregation address: iSwitch
/// switches intercept by ToS, so data packets never need a concrete
/// switch IP.
pub fn gradient_packets(src: IpAddr, grad: &[f32]) -> Vec<Packet> {
    gradient_packets_round(src, grad, 0)
}

/// Like [`gradient_packets`] with an explicit aggregation-round tag in the
/// `Seg` field (see [`crate::tag_round`]); receivers use the tag to ignore
/// stale re-broadcasts.
pub fn gradient_packets_round(src: IpAddr, grad: &[f32], round: u32) -> Vec<Packet> {
    // Encode each chunk of the gradient straight into its payload — no
    // intermediate owned `DataSegment` per packet (this runs once per
    // worker per iteration on the hot path).
    grad.chunks(FLOATS_PER_SEGMENT)
        .enumerate()
        .map(|(i, chunk)| {
            let seg = tag_round(i as u64, round);
            sealed_data_packet(src, UPSTREAM_IP, seg, encode_segment(seg, 1, chunk))
        })
        .collect()
}

/// Like [`gradient_packets_round`] with the contribution payloads encoded
/// under `codec`. `exp_bias` seeds the fixed-point exponent-stamp bug
/// (zero for correct operation; ignored by other codecs). For
/// [`CodecKind::F32`] with zero bias the packets are byte-identical to
/// [`gradient_packets_round`].
///
/// # Panics
///
/// Panics if the gradient contains non-finite values — quantized codecs
/// reject NaN/Inf at encode time.
pub fn gradient_packets_round_codec(
    src: IpAddr,
    grad: &[f32],
    round: u32,
    codec: CodecKind,
    exp_bias: i8,
) -> Vec<Packet> {
    if codec == CodecKind::F32 {
        return gradient_packets_round(src, grad, round);
    }
    grad.chunks(codec.elems_per_segment())
        .enumerate()
        .map(|(i, chunk)| {
            let seg = tag_round(i as u64, round);
            sealed_data_packet(
                src,
                UPSTREAM_IP,
                seg,
                encode_codec_segment(codec, seg, chunk, exp_bias),
            )
        })
        .collect()
}

/// Pre-encoded contribution payloads for a gradient vector whose contents
/// do not change between iterations (timing-mode synthetic gradients).
///
/// [`gradient_packets_round`] re-reads and byteswaps every f32 each
/// iteration even though only the 8-byte round-tagged header differs
/// between rounds. This cache encodes the vector once; per iteration,
/// round 0 packets reuse the stored [`Bytes`] outright (refcount clone),
/// and other rounds pay one memcpy plus an 8-byte header patch per packet.
/// Output is byte-for-byte identical to [`gradient_packets_round`].
pub struct EncodedGradient {
    src: IpAddr,
    /// Encoded payloads tagged with round 0 (identity tag).
    round0: Vec<Bytes>,
}

impl EncodedGradient {
    /// Encodes `grad` once as worker contributions (count = 1).
    pub fn new(src: IpAddr, grad: &[f32]) -> Self {
        Self::with_codec(src, grad, CodecKind::F32, 0)
    }

    /// Encodes `grad` once under `codec` (`exp_bias` seeds the fixed-point
    /// exponent-stamp bug; zero is correct operation). The per-round header
    /// patch in [`EncodedGradient::packets_round`] works for every codec —
    /// all layouts share the 8-byte `Seg` header and nothing else in the
    /// payload depends on the round.
    ///
    /// # Panics
    ///
    /// Panics if the gradient contains non-finite values and the codec is
    /// quantized.
    pub fn with_codec(src: IpAddr, grad: &[f32], codec: CodecKind, exp_bias: i8) -> Self {
        let encode = |i: usize, chunk: &[f32]| {
            let seg = tag_round(i as u64, 0);
            if codec == CodecKind::F32 {
                encode_segment(seg, 1, chunk)
            } else {
                encode_codec_segment(codec, seg, chunk, exp_bias)
            }
        };
        EncodedGradient {
            src,
            round0: grad
                .chunks(codec.elems_per_segment())
                .enumerate()
                .map(|(i, chunk)| encode(i, chunk))
                .collect(),
        }
    }

    /// Builds the packet sequence for `round` — the cached-template
    /// equivalent of [`gradient_packets_round`].
    pub fn packets_round(&self, round: u32) -> Vec<Packet> {
        self.round0
            .iter()
            .enumerate()
            .map(|(i, template)| {
                let seg = tag_round(i as u64, round);
                let header = (seg << 16) | 1;
                let payload = if template[..SEG_HEADER_BYTES] == header.to_be_bytes() {
                    // Header already matches (segment 0 of round 0, and any
                    // template whose patch would be a no-op): share storage.
                    template.clone()
                } else {
                    let mut buf = template.to_vec();
                    buf[..SEG_HEADER_BYTES].copy_from_slice(&header.to_be_bytes());
                    Bytes::from(buf)
                };
                sealed_data_packet(self.src, UPSTREAM_IP, seg, payload)
            })
            .collect()
    }
}

/// Builds a single data packet carrying `seg`.
///
/// The packet is stamped with a [`CausalKey`] derived from the tagged `Seg`
/// field (round and spatial segment index) plus the sender's address as the
/// producer identity, so per-hop trace events can be tied back to the unit
/// of training work the packet carries.
pub fn data_packet(src: IpAddr, dst: IpAddr, seg: &DataSegment) -> Packet {
    sealed_data_packet(src, dst, seg.seg, seg.encode())
}

/// Builds a result packet carrying an aggregate in `codec`'s wide result
/// format — what iSwitch switches broadcast down (and intermediates send
/// up). For [`CodecKind::F32`] this is exactly [`data_packet`].
pub fn result_packet(src: IpAddr, dst: IpAddr, seg: &DataSegment, codec: CodecKind) -> Packet {
    sealed_data_packet(src, dst, seg.seg, codec.codec().encode_result(seg))
}

/// Re-wraps an already-encoded data payload into a packet from `src` —
/// the zero-copy relay path: an intermediate switch fanning out a result
/// from its parent forwards the payload [`Bytes`] as-is, no decode or
/// re-encode (`meta` comes from [`decode_data_meta`] on the way in).
pub fn data_packet_wire(src: IpAddr, dst: IpAddr, meta: SegmentMeta, payload: Bytes) -> Packet {
    sealed_data_packet(src, dst, meta.seg, payload)
}

/// Wraps an encoded payload whose `Seg` field is `seg` into a data packet
/// with the standard causal stamp.
fn sealed_data_packet(src: IpAddr, dst: IpAddr, seg: u64, payload: Bytes) -> Packet {
    Packet::udp(src, dst, ISWITCH_UDP_PORT, ISWITCH_UDP_PORT, TOS_DATA)
        .with_payload(payload)
        .with_cause(CausalKey {
            round: u64::from(seg_round(seg)),
            segment: seg_index(seg),
            worker: u64::from(src.as_u32()),
            tenant: 0,
        })
}

/// Builds a control packet carrying `msg` from `src` to `dst`.
pub fn control_packet(src: IpAddr, dst: IpAddr, msg: &ControlMessage) -> Packet {
    Packet::udp(src, dst, ISWITCH_UDP_PORT, ISWITCH_UDP_PORT, TOS_CONTROL)
        .with_payload(msg.encode())
}

/// Parses an iSwitch data packet, returning `None` for anything else
/// (wrong ToS or malformed payload).
pub fn decode_data(pkt: &Packet) -> Option<DataSegment> {
    if dscp(pkt.ip.tos) != TOS_DATA {
        return None;
    }
    DataSegment::decode(&pkt.payload).ok()
}

/// Parses just the header of an iSwitch data packet — the cheap peek for
/// consumers that do not need the values materialized (arrival bookkeeping,
/// [`crate::Accelerator::ingest_wire`]).
pub fn decode_data_meta(pkt: &Packet) -> Option<SegmentMeta> {
    if dscp(pkt.ip.tos) != TOS_DATA {
        return None;
    }
    DataSegment::decode_meta(&pkt.payload).ok()
}

/// Parses an iSwitch control packet, returning `None` for anything else.
pub fn decode_control(pkt: &Packet) -> Option<ControlMessage> {
    if dscp(pkt.ip.tos) != TOS_CONTROL {
        return None;
    }
    ControlMessage::decode(&pkt.payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FLOATS_PER_SEGMENT;

    #[test]
    fn gradient_packets_cover_the_vector_in_order() {
        let grad: Vec<f32> = (0..FLOATS_PER_SEGMENT + 5).map(|i| i as f32).collect();
        let pkts = gradient_packets(IpAddr::new(10, 0, 0, 1), &grad);
        assert_eq!(pkts.len(), 2);
        let seg0 = decode_data(&pkts[0]).unwrap();
        let seg1 = decode_data(&pkts[1]).unwrap();
        assert_eq!(seg0.seg, 0);
        assert_eq!(seg1.seg, 1);
        assert_eq!(seg0.values.len(), FLOATS_PER_SEGMENT);
        assert_eq!(seg1.values.len(), 5);
        assert_eq!(seg1.values[4], (FLOATS_PER_SEGMENT + 4) as f32);
    }

    #[test]
    fn decode_rejects_wrong_tos() {
        let grad = vec![1.0f32; 4];
        let mut pkt = gradient_packets(IpAddr::new(10, 0, 0, 1), &grad).remove(0);
        pkt.ip.tos = 0;
        assert!(decode_data(&pkt).is_none());

        let ctrl = control_packet(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 255, 1),
            &ControlMessage::Reset,
        );
        assert!(decode_control(&ctrl).is_some());
        assert!(decode_data(&ctrl).is_none());
    }
}
