//! # iswitch-rl
//!
//! The reinforcement-learning substrate for the iSwitch (ISCA '19)
//! reproduction: the four benchmark algorithms the paper trains — DQN, A2C,
//! PPO, and DDPG — on self-contained stand-in environments, behind one
//! [`Agent`] interface shaped for distributed gradient aggregation.
//!
//! A worker calls [`Agent::compute_gradient`] (the paper's "Local Gradient
//! Computing" stage) to produce a flat `Vec<f32>` gradient; the cluster
//! layer aggregates those vectors — in a parameter server, a
//! Ring-AllReduce, or the in-switch accelerator — and every worker applies
//! the same aggregated gradient to identical weights.
//!
//! ## Example
//!
//! ```
//! use iswitch_rl::{make_lite_agent, Algorithm};
//!
//! // Two workers exploring independently with identical initial weights.
//! let mut w0 = make_lite_agent(Algorithm::A2c, 0);
//! let mut w1 = make_lite_agent(Algorithm::A2c, 1);
//! let shared = w0.params();
//! w1.set_params(&shared);
//!
//! let g0 = w0.compute_gradient();
//! let g1 = w1.compute_gradient();
//! let mean: Vec<f32> = g0.iter().zip(&g1).map(|(a, b)| (a + b) / 2.0).collect();
//!
//! let mut opt = w0.make_optimizer();
//! let mut params = shared.clone();
//! opt.step(&mut params, &mean);
//! w0.set_params(&params);
//! w1.set_params(&params);
//! ```

#![warn(missing_docs)]

mod algo;
mod env;
pub mod envs;
mod model_zoo;
mod replay;
mod replica;

pub use algo::{
    discounted_returns, gae, normalize, standard_normal, A2cAgent, A2cConfig, Agent, ConvFront,
    DdpgAgent, DdpgConfig, DqnAgent, DqnConfig, GaussianPolicy, PpoAgent, PpoConfig, RewardTracker,
    SplitOptimizer,
};
pub use env::{Action, ActionSpace, Environment, StepOutcome};
pub use model_zoo::{
    all_paper_models, hidden_for_target, make_lite_agent, make_lite_agent_scaled, mlp_param_count,
    paper_a2c, paper_ddpg, paper_dqn, paper_model, paper_ppo, Algorithm, ModelSpec,
};
pub use replay::{ReplayBuffer, Transition};
pub use replica::LocalReplica;
