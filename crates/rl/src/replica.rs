//! A worker's local training replica: agent + optimizer + weight copy.
//!
//! The paper's decentralized weight storage (§4.1) keeps a full parameter
//! replica and an identical optimizer on every worker; the switch only
//! moves gradients. [`LocalReplica`] packages that trio behind the
//! gradient export/import seam the cluster harness drives: export a flat
//! gradient ([`LocalReplica::compute_gradient`]), later import an
//! aggregated mean ([`LocalReplica::apply_mean`]) which steps the local
//! optimizer and installs the result — since every replica applies the
//! same aggregate to the same weights with the same optimizer state, all
//! replicas stay bit-identical without ever shipping parameters.

use iswitch_tensor::Optimizer;

use crate::algo::Agent;

/// A self-contained local training replica (agent, optimizer, weights).
pub struct LocalReplica {
    agent: Box<dyn Agent>,
    opt: Box<dyn Optimizer + Send>,
    params: Vec<f32>,
    updates: u64,
}

impl LocalReplica {
    /// Wraps `agent`, snapshotting its parameters and building its
    /// algorithm-appropriate optimizer replica.
    pub fn new(mut agent: Box<dyn Agent>) -> Self {
        let params = agent.params();
        let opt = agent.make_optimizer();
        LocalReplica {
            agent,
            opt,
            params,
            updates: 0,
        }
    }

    /// Number of scalar parameters (gradient vector length).
    pub fn param_count(&self) -> usize {
        self.agent.param_count()
    }

    /// Runs local environment interaction and exports one flat gradient
    /// at the current weights (the LGC stage).
    pub fn compute_gradient(&mut self) -> Vec<f32> {
        self.agent.compute_gradient()
    }

    /// Imports an aggregated mean gradient: steps the local optimizer
    /// replica and installs the updated weights (the LWU stage).
    ///
    /// # Panics
    ///
    /// Panics if `mean` has the wrong length.
    pub fn apply_mean(&mut self, mean: &[f32]) {
        self.opt.step(&mut self.params, mean);
        self.agent.set_params(&self.params);
        self.agent.on_weights_updated();
        self.updates += 1;
    }

    /// Overwrites the replica's weights with externally supplied ones,
    /// running post-update housekeeping (target syncs, schedule ticks).
    pub fn install_params(&mut self, params: &[f32]) {
        self.params.clear();
        self.params.extend_from_slice(params);
        self.agent.set_params(params);
        self.agent.on_weights_updated();
    }

    /// Points the agent at `params` *without* post-update housekeeping —
    /// the staleness-replay path, where gradients are recomputed at
    /// historical weights.
    pub fn load_params(&mut self, params: &[f32]) {
        self.agent.set_params(params);
    }

    /// Current weight replica.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Aggregated updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The paper's "Final Average Reward" of the wrapped agent.
    pub fn final_average_reward(&self) -> Option<f32> {
        self.agent.final_average_reward()
    }

    /// Read access to the wrapped agent.
    pub fn agent(&self) -> &dyn Agent {
        &*self.agent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_zoo::{make_lite_agent, Algorithm};

    #[test]
    fn replicas_stay_identical_under_identical_aggregates() {
        let mut a = LocalReplica::new(make_lite_agent(Algorithm::A2c, 0));
        let mut b = LocalReplica::new(make_lite_agent(Algorithm::A2c, 1));
        let init = a.params().to_vec();
        b.install_params(&init);

        let ga = a.compute_gradient();
        let gb = b.compute_gradient();
        let mean: Vec<f32> = ga.iter().zip(&gb).map(|(x, y)| (x + y) / 2.0).collect();
        a.apply_mean(&mean);
        b.apply_mean(&mean);
        assert_eq!(a.params(), b.params());
        assert_eq!(a.updates(), 1);
    }

    #[test]
    fn apply_mean_matches_manual_optimizer_step() {
        let mut agent = make_lite_agent(Algorithm::A2c, 7);
        let mut params = agent.params();
        let mut opt = agent.make_optimizer();

        let mut replica = LocalReplica::new(make_lite_agent(Algorithm::A2c, 7));
        replica.install_params(&params);
        agent.set_params(&params);
        agent.on_weights_updated();

        let grad = agent.compute_gradient();
        let replica_grad = replica.compute_gradient();
        assert_eq!(grad, replica_grad);

        opt.step(&mut params, &grad);
        replica.apply_mean(&grad);
        assert_eq!(replica.params(), &params[..]);
    }
}
