//! Model configurations matching the paper's Table 1, plus the "lite"
//! agents used for convergence experiments.
//!
//! Table 1 of the paper:
//!
//! | Algorithm | Environment | Model size | Training iterations |
//! |---|---|---|---|
//! | DQN  | Atari (Pong)        | 6.41 MB   | 200.00 M |
//! | A2C  | Atari (Qbert)       | 3.31 MB   | 2.00 M   |
//! | PPO  | MuJoCo (Hopper)     | 40.02 KB  | 0.15 M   |
//! | DDPG | MuJoCo (HalfCheetah)| 157.52 KB | 2.50 M   |
//!
//! The "paper-sized" specs here reproduce those byte sizes (within a small
//! rounding margin) with MLPs, so the gradient vectors on the simulated
//! wire have the same length as the paper's. The lite specs are the small
//! networks used when real convergence must be measured on a laptop.

use crate::algo::{
    A2cAgent, A2cConfig, Agent, DdpgAgent, DdpgConfig, DqnAgent, DqnConfig, PpoAgent, PpoConfig,
};
use crate::envs::{CartPole, CheetahLite, GridWorld, Pendulum};

/// One of the paper's four benchmark algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Deep Q-Network.
    Dqn,
    /// Advantage Actor-Critic.
    A2c,
    /// Proximal Policy Optimization.
    Ppo,
    /// Deep Deterministic Policy Gradient.
    Ddpg,
}

impl Algorithm {
    /// All four, in the paper's order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Dqn,
        Algorithm::A2c,
        Algorithm::Ppo,
        Algorithm::Ddpg,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Dqn => "DQN",
            Algorithm::A2c => "A2C",
            Algorithm::Ppo => "PPO",
            Algorithm::Ddpg => "DDPG",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A (possibly multi-network) model shape with paper-reported metadata.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// The algorithm this model belongs to.
    pub algorithm: Algorithm,
    /// The paper's environment name.
    pub paper_environment: &'static str,
    /// Layer sizes of each constituent network (e.g. DDPG has two).
    pub networks: Vec<Vec<usize>>,
    /// Model size reported in Table 1, in bytes.
    pub paper_bytes: u64,
    /// Training iterations reported in Table 1.
    pub paper_iterations: u64,
}

impl ModelSpec {
    /// Total scalar parameters across all networks.
    pub fn param_count(&self) -> usize {
        self.networks
            .iter()
            .map(|sizes| mlp_param_count(sizes))
            .sum()
    }

    /// Model size in bytes (4 bytes per f32 parameter).
    pub fn bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Relative error of this spec's byte size vs. the paper's.
    pub fn size_error(&self) -> f64 {
        (self.bytes() as f64 - self.paper_bytes as f64).abs() / self.paper_bytes as f64
    }
}

/// Parameters of an MLP with the given layer sizes.
pub fn mlp_param_count(sizes: &[usize]) -> usize {
    sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
}

/// Hidden width `h` such that a 2-hidden-layer MLP `[input, h, h, output]`
/// has approximately `target` parameters (never exceeding it by much):
/// solves `h² + h(input + output + 2) + output = target`.
pub fn hidden_for_target(target: usize, input: usize, output: usize) -> usize {
    let b = (input + output + 2) as f64;
    let c = output as f64 - target as f64;
    let h = (-b + (b * b - 4.0 * c).sqrt()) / 2.0;
    assert!(
        h >= 1.0,
        "target {target} too small for input {input} / output {output}"
    );
    h.round() as usize
}

/// Paper-sized DQN model (Table 1: 6.41 MB, 200 M iterations).
pub fn paper_dqn() -> ModelSpec {
    let (input, output) = (512, 6);
    let h = hidden_for_target(6_41 * 1_048_576 / 100 / 4, input, output);
    ModelSpec {
        algorithm: Algorithm::Dqn,
        paper_environment: "Atari Pong",
        networks: vec![vec![input, h, h, output]],
        paper_bytes: (6.41f64 * 1_048_576.0) as u64,
        paper_iterations: 200_000_000,
    }
}

/// Paper-sized A2C model (Table 1: 3.31 MB, 2 M iterations).
pub fn paper_a2c() -> ModelSpec {
    let (input, output) = (512, 6);
    let h = hidden_for_target((3.31f64 * 1_048_576.0 / 4.0) as usize, input, output);
    ModelSpec {
        algorithm: Algorithm::A2c,
        paper_environment: "Atari Qbert",
        networks: vec![vec![input, h, h, output]],
        paper_bytes: (3.31f64 * 1_048_576.0) as u64,
        paper_iterations: 2_000_000,
    }
}

/// Paper-sized PPO model (Table 1: 40.02 KB, 0.15 M iterations).
pub fn paper_ppo() -> ModelSpec {
    let (input, output) = (11, 3);
    let h = hidden_for_target((40.02f64 * 1_024.0 / 4.0) as usize, input, output);
    ModelSpec {
        algorithm: Algorithm::Ppo,
        paper_environment: "MuJoCo Hopper",
        networks: vec![vec![input, h, h, output]],
        paper_bytes: (40.02f64 * 1_024.0) as u64,
        paper_iterations: 150_000,
    }
}

/// Paper-sized DDPG dual model (Table 1: 157.52 KB total, 2.5 M iterations).
pub fn paper_ddpg() -> ModelSpec {
    let (obs, act) = (17, 6);
    let half = (157.52f64 * 1_024.0 / 4.0 / 2.0) as usize;
    let ha = hidden_for_target(half, obs, act);
    let hc = hidden_for_target(half, obs + act, 1);
    ModelSpec {
        algorithm: Algorithm::Ddpg,
        paper_environment: "MuJoCo HalfCheetah",
        networks: vec![vec![obs, ha, ha, act], vec![obs + act, hc, hc, 1]],
        paper_bytes: (157.52f64 * 1_024.0) as u64,
        paper_iterations: 2_500_000,
    }
}

/// The paper-sized model for a given algorithm.
pub fn paper_model(alg: Algorithm) -> ModelSpec {
    match alg {
        Algorithm::Dqn => paper_dqn(),
        Algorithm::A2c => paper_a2c(),
        Algorithm::Ppo => paper_ppo(),
        Algorithm::Ddpg => paper_ddpg(),
    }
}

/// All four paper-sized models in Table 1 order.
pub fn all_paper_models() -> Vec<ModelSpec> {
    Algorithm::ALL.iter().map(|&a| paper_model(a)).collect()
}

/// Builds the "lite" worker agent used for convergence experiments:
/// small networks on the stand-in environments (see `crate::envs`).
///
/// Different `seed`s give workers independent exploration while algorithm
/// structure stays identical.
pub fn make_lite_agent(alg: Algorithm, seed: u64) -> Box<dyn Agent> {
    make_lite_agent_scaled(alg, seed, 1.0)
}

/// Like [`make_lite_agent`], with every learning rate multiplied by
/// `lr_scale`. Asynchronous experiments use a reduced rate (applied
/// identically to all async strategies), the standard practice for
/// stale-gradient training.
pub fn make_lite_agent_scaled(alg: Algorithm, seed: u64, lr_scale: f32) -> Box<dyn Agent> {
    assert!(lr_scale > 0.0, "lr_scale must be positive");
    match alg {
        Algorithm::Dqn => {
            let mut cfg = DqnConfig::default();
            cfg.lr *= lr_scale;
            Box::new(DqnAgent::new(
                Box::new(CartPole::new(seed)),
                cfg,
                seed.wrapping_add(0x9e37),
            ))
        }
        Algorithm::A2c => {
            let mut cfg = A2cConfig::default();
            cfg.lr *= lr_scale;
            Box::new(A2cAgent::new(
                Box::new(GridWorld::new(8, 0.1, seed)),
                cfg,
                seed.wrapping_add(0x9e37),
            ))
        }
        Algorithm::Ppo => {
            let mut cfg = PpoConfig::default();
            cfg.lr *= lr_scale;
            Box::new(PpoAgent::new(
                Box::new(Pendulum::balance(seed)),
                cfg,
                seed.wrapping_add(0x9e37),
            ))
        }
        Algorithm::Ddpg => {
            let mut cfg = DdpgConfig::default();
            cfg.actor_lr *= lr_scale;
            cfg.critic_lr *= lr_scale;
            Box::new(DdpgAgent::new(
                Box::new(CheetahLite::new(seed)),
                cfg,
                seed.wrapping_add(0x9e37),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_param_count_matches_hand_math() {
        assert_eq!(mlp_param_count(&[4, 8, 2]), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn hidden_solver_hits_target() {
        let h = hidden_for_target(10_000, 11, 3);
        let got = mlp_param_count(&[11, h, h, 3]);
        assert!((got as f64 - 10_000.0).abs() / 10_000.0 < 0.05, "{got}");
    }

    #[test]
    fn paper_models_match_table1_sizes_within_one_percent() {
        for spec in all_paper_models() {
            assert!(
                spec.size_error() < 0.01,
                "{}: {} bytes vs paper {} ({}% off)",
                spec.algorithm,
                spec.bytes(),
                spec.paper_bytes,
                spec.size_error() * 100.0
            );
        }
    }

    #[test]
    fn ddpg_spec_is_dual_model() {
        assert_eq!(paper_ddpg().networks.len(), 2);
    }

    #[test]
    fn table1_iteration_counts() {
        assert_eq!(paper_dqn().paper_iterations, 200_000_000);
        assert_eq!(paper_a2c().paper_iterations, 2_000_000);
        assert_eq!(paper_ppo().paper_iterations, 150_000);
        assert_eq!(paper_ddpg().paper_iterations, 2_500_000);
    }

    #[test]
    fn lite_agents_expose_consistent_params() {
        for alg in Algorithm::ALL {
            let mut agent = make_lite_agent(alg, 0);
            let p = agent.params();
            assert_eq!(p.len(), agent.param_count(), "{alg}");
            assert_eq!(agent.name(), alg.name());
        }
    }
}
