//! A stochastic grid-world — the discrete stand-in for Atari "Qbert"
//! (paper §5.1): sparse positive reward, discrete actions, short episodes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

/// An `n`×`n` grid. The agent starts in the lower-left corner and must reach
/// the goal in the upper-right. Each move costs `-0.05`; reaching the goal
/// pays `+1.0`. With probability `slip` the agent moves in a random
/// direction instead of the chosen one. Episodes cap at `4 * n * n` steps.
///
/// Observations are 4-dimensional: normalized `(x, y)` plus the normalized
/// offset to the goal. Actions: 0=up, 1=down, 2=left, 3=right.
#[derive(Debug)]
pub struct GridWorld {
    n: usize,
    slip: f32,
    x: usize,
    y: usize,
    steps: usize,
    done: bool,
    rng: StdRng,
}

impl GridWorld {
    /// A new grid world with side `n` and slip probability `slip`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `slip` is outside `[0, 1)`.
    pub fn new(n: usize, slip: f32, seed: u64) -> Self {
        assert!(n >= 2, "grid must be at least 2x2");
        assert!((0.0..1.0).contains(&slip), "slip must be in [0,1)");
        GridWorld {
            n,
            slip,
            x: 0,
            y: 0,
            steps: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The default configuration used in the experiments: 5×5, 10% slip.
    pub fn standard(seed: u64) -> Self {
        GridWorld::new(5, 0.1, seed)
    }

    fn observe(&self) -> Vec<f32> {
        let n = (self.n - 1) as f32;
        let gx = (self.n - 1) as f32;
        let gy = (self.n - 1) as f32;
        vec![
            self.x as f32 / n,
            self.y as f32 / n,
            (gx - self.x as f32) / n,
            (gy - self.y as f32) / n,
        ]
    }

    fn max_steps(&self) -> usize {
        4 * self.n * self.n
    }
}

impl Environment for GridWorld {
    fn obs_dim(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(4)
    }

    fn reset(&mut self) -> Vec<f32> {
        self.x = 0;
        self.y = 0;
        self.steps = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let mut a = action.discrete();
        assert!(a < 4, "grid-world action out of range");
        if self.rng.gen::<f32>() < self.slip {
            a = self.rng.gen_range(0..4);
        }
        match a {
            0 => self.y = (self.y + 1).min(self.n - 1),
            1 => self.y = self.y.saturating_sub(1),
            2 => self.x = self.x.saturating_sub(1),
            _ => self.x = (self.x + 1).min(self.n - 1),
        }
        self.steps += 1;
        let at_goal = self.x == self.n - 1 && self.y == self.n - 1;
        let timeout = self.steps >= self.max_steps();
        self.done = at_goal || timeout;
        StepOutcome {
            obs: self.observe(),
            reward: if at_goal { 1.0 } else { -0.05 },
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "GridWorld"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_goal_with_deterministic_moves() {
        let mut env = GridWorld::new(3, 0.0, 0);
        env.reset();
        let mut total = 0.0;
        let mut done = false;
        for a in [3, 3, 0, 0] {
            let out = env.step(&Action::Discrete(a));
            total += out.reward;
            done = out.done;
        }
        assert!(done);
        assert!((total - (1.0 - 0.15)).abs() < 1e-6);
    }

    #[test]
    fn walls_clamp_movement() {
        let mut env = GridWorld::new(3, 0.0, 0);
        let start = env.reset();
        let out = env.step(&Action::Discrete(2)); // left into the wall
        assert_eq!(out.obs, start);
    }

    #[test]
    fn times_out_eventually() {
        let mut env = GridWorld::new(3, 0.0, 0);
        env.reset();
        let mut steps = 0;
        loop {
            // Bounce between left and down in the corner: never reaches goal.
            let out = env.step(&Action::Discrete(if steps % 2 == 0 { 2 } else { 1 }));
            steps += 1;
            if out.done {
                break;
            }
        }
        assert_eq!(steps, 36);
    }

    #[test]
    #[should_panic(expected = "after done")]
    fn stepping_after_done_panics() {
        let mut env = GridWorld::new(2, 0.0, 0);
        env.reset();
        loop {
            if env.step(&Action::Discrete(3)).done {
                break;
            }
        }
        let _ = env.step(&Action::Discrete(3));
    }

    #[test]
    fn slip_is_reproducible_per_seed() {
        let run = |seed| {
            let mut env = GridWorld::new(5, 0.5, seed);
            env.reset();
            (0..20)
                .map(|_| env.step(&Action::Discrete(3)).obs[0].to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
