//! CheetahLite — a planar locomotion task standing in for MuJoCo
//! "HalfCheetah" (paper §5.1): multi-dimensional continuous control with a
//! forward-velocity reward and a quadratic control cost.
//!
//! The dynamics are a deliberately simple mass–spring "gait" model: two
//! actuated joints drive the body's forward acceleration through a phase
//! coupling, so high reward requires the joints to oscillate coherently —
//! enough structure that DDPG has something nontrivial to learn, without a
//! physics engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

const DT: f32 = 0.05;
const MAX_STEPS: usize = 200;
const JOINT_LIMIT: f32 = 1.5;
const MAX_ACTION: f32 = 1.0;

/// A 6-observation, 2-action planar runner.
///
/// State: body velocity `v`, two joint angles `q0, q1`, two joint velocities
/// `dq0, dq1`, and the gait phase. Actions torque the joints; forward thrust
/// is produced when the joints swing out of phase (`q0 · dq1 - q1 · dq0`),
/// and drag pulls `v` back toward zero. Reward is
/// `v - 0.1·(u0² + u1²)` per step.
#[derive(Debug)]
pub struct CheetahLite {
    v: f32,
    q: [f32; 2],
    dq: [f32; 2],
    phase: f32,
    steps: usize,
    done: bool,
    rng: StdRng,
}

impl CheetahLite {
    /// A new runner with its own seeded RNG for initial-state jitter.
    pub fn new(seed: u64) -> Self {
        CheetahLite {
            v: 0.0,
            q: [0.0; 2],
            dq: [0.0; 2],
            phase: 0.0,
            steps: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn observe(&self) -> Vec<f32> {
        vec![
            self.v,
            self.q[0],
            self.q[1],
            self.dq[0],
            self.dq[1],
            self.phase.sin(),
        ]
    }
}

impl Environment for CheetahLite {
    fn obs_dim(&self) -> usize {
        6
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous {
            dim: 2,
            low: -MAX_ACTION,
            high: MAX_ACTION,
        }
    }

    fn reset(&mut self) -> Vec<f32> {
        self.v = 0.0;
        for q in &mut self.q {
            *q = self.rng.gen_range(-0.1..0.1);
        }
        for dq in &mut self.dq {
            *dq = self.rng.gen_range(-0.1..0.1);
        }
        self.phase = 0.0;
        self.steps = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let act = action.continuous();
        assert_eq!(act.len(), 2, "cheetah-lite expects 2 action dims");
        let u = [
            act[0].clamp(-MAX_ACTION, MAX_ACTION),
            act[1].clamp(-MAX_ACTION, MAX_ACTION),
        ];
        // Joint dynamics: torque, spring restoring force, damping.
        for (i, &torque) in u.iter().enumerate() {
            let acc = 8.0 * torque - 4.0 * self.q[i] - 0.5 * self.dq[i];
            self.dq[i] += acc * DT;
            self.q[i] = (self.q[i] + self.dq[i] * DT).clamp(-JOINT_LIMIT, JOINT_LIMIT);
        }
        // Out-of-phase joint swing produces forward thrust; drag decays v.
        let thrust = (self.q[1] * self.dq[0] - self.q[0] * self.dq[1]).clamp(-4.0, 4.0);
        self.v += (2.0 * thrust - 0.8 * self.v) * DT;
        self.phase += DT * 2.0 * std::f32::consts::PI;
        self.steps += 1;
        self.done = self.steps >= MAX_STEPS;
        let reward = self.v - 0.1 * (u[0] * u[0] + u[1] * u[1]);
        StepOutcome {
            obs: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "CheetahLite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_reward(mut policy: impl FnMut(&[f32], usize) -> [f32; 2], seed: u64) -> f32 {
        let mut env = CheetahLite::new(seed);
        let mut obs = env.reset();
        let mut total = 0.0;
        let mut t = 0;
        loop {
            let a = policy(&obs, t);
            let out = env.step(&Action::Continuous(a.to_vec()));
            total += out.reward;
            obs = out.obs;
            t += 1;
            if out.done {
                return total;
            }
        }
    }

    #[test]
    fn idle_policy_scores_near_zero() {
        let r = total_reward(|_, _| [0.0, 0.0], 0);
        assert!(r.abs() < 1.0, "idle reward should be ~0, got {r}");
    }

    #[test]
    fn out_of_phase_oscillation_runs_forward() {
        // A quadrature "gait" produces sustained thrust.
        let gait = |_: &[f32], t: usize| {
            let ph = t as f32 * DT * 2.0 * std::f32::consts::PI;
            [ph.sin(), ph.cos()]
        };
        let r = total_reward(gait, 0);
        assert!(r > 20.0, "gait should earn substantial reward, got {r}");
    }

    #[test]
    fn in_phase_oscillation_earns_less() {
        let in_phase = |_: &[f32], t: usize| {
            let ph = t as f32 * DT * 2.0 * std::f32::consts::PI;
            [ph.sin(), ph.sin()]
        };
        let quadrature = |_: &[f32], t: usize| {
            let ph = t as f32 * DT * 2.0 * std::f32::consts::PI;
            [ph.sin(), ph.cos()]
        };
        assert!(total_reward(quadrature, 1) > total_reward(in_phase, 1) + 10.0);
    }

    #[test]
    fn joint_angles_stay_bounded() {
        let mut env = CheetahLite::new(2);
        env.reset();
        for _ in 0..MAX_STEPS {
            let out = env.step(&Action::Continuous(vec![1.0, -1.0]));
            assert!(out.obs[1].abs() <= JOINT_LIMIT + 1e-5);
            assert!(out.obs[2].abs() <= JOINT_LIMIT + 1e-5);
            if out.done {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "2 action dims")]
    fn wrong_action_arity_panics() {
        let mut env = CheetahLite::new(0);
        env.reset();
        let _ = env.step(&Action::Continuous(vec![0.0]));
    }
}
