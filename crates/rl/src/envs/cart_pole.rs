//! CartPole — the discrete-control stand-in for Atari "Pong" (paper §5.1).
//!
//! Standard Barto–Sutton–Anderson dynamics with the OpenAI Gym
//! parameterization: episodes end when the pole falls past ±12°, the cart
//! leaves ±2.4, or after 500 steps. Reward is +1 per surviving step, so the
//! maximum episode reward is 500.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

const GRAVITY: f32 = 9.8;
const MASS_CART: f32 = 1.0;
const MASS_POLE: f32 = 0.1;
const TOTAL_MASS: f32 = MASS_CART + MASS_POLE;
const POLE_HALF_LENGTH: f32 = 0.5;
const POLE_MASS_LENGTH: f32 = MASS_POLE * POLE_HALF_LENGTH;
const FORCE_MAG: f32 = 10.0;
const TAU: f32 = 0.02;
const THETA_LIMIT: f32 = 12.0 * std::f32::consts::PI / 180.0;
const X_LIMIT: f32 = 2.4;
const MAX_STEPS: usize = 500;

/// The CartPole balancing task. Observations are
/// `[x, x_dot, theta, theta_dot]`; actions are 0 (push left) / 1 (push
/// right).
#[derive(Debug)]
pub struct CartPole {
    state: [f32; 4],
    steps: usize,
    done: bool,
    rng: StdRng,
}

impl CartPole {
    /// A new CartPole with its own seeded RNG for initial-state jitter.
    pub fn new(seed: u64) -> Self {
        CartPole {
            state: [0.0; 4],
            steps: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Environment for CartPole {
    fn obs_dim(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(2)
    }

    fn reset(&mut self) -> Vec<f32> {
        for s in &mut self.state {
            *s = self.rng.gen_range(-0.05..0.05);
        }
        self.steps = 0;
        self.done = false;
        self.state.to_vec()
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let a = action.discrete();
        assert!(a < 2, "cart-pole action out of range");
        let force = if a == 1 { FORCE_MAG } else { -FORCE_MAG };
        let [x, x_dot, theta, theta_dot] = self.state;
        let cos = theta.cos();
        let sin = theta.sin();
        let temp = (force + POLE_MASS_LENGTH * theta_dot * theta_dot * sin) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin - cos * temp)
            / (POLE_HALF_LENGTH * (4.0 / 3.0 - MASS_POLE * cos * cos / TOTAL_MASS));
        let x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos / TOTAL_MASS;
        self.state = [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ];
        self.steps += 1;
        let fell = self.state[0].abs() > X_LIMIT || self.state[2].abs() > THETA_LIMIT;
        self.done = fell || self.steps >= MAX_STEPS;
        StepOutcome {
            obs: self.state.to_vec(),
            reward: 1.0,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "CartPole"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_policy(mut policy: impl FnMut(&[f32]) -> usize, seed: u64) -> (f32, usize) {
        let mut env = CartPole::new(seed);
        let mut obs = env.reset();
        let mut total = 0.0;
        let mut steps = 0;
        loop {
            let out = env.step(&Action::Discrete(policy(&obs)));
            total += out.reward;
            steps += 1;
            obs = out.obs;
            if out.done {
                return (total, steps);
            }
        }
    }

    #[test]
    fn constant_push_fails_quickly() {
        let (reward, steps) = run_policy(|_| 1, 0);
        assert!(
            steps < 100,
            "constant force should topple the pole, took {steps}"
        );
        assert_eq!(reward, steps as f32);
    }

    #[test]
    fn angle_feedback_beats_constant_policy() {
        // Push toward the lean: a classic stabilizing heuristic.
        let (good, _) = run_policy(|obs| if obs[2] > 0.0 { 1 } else { 0 }, 0);
        let (bad, _) = run_policy(|_| 1, 0);
        assert!(good > 2.0 * bad, "feedback {good} vs constant {bad}");
    }

    #[test]
    fn episode_caps_at_500() {
        // The feedback policy balances essentially forever; the cap kicks in.
        let (reward, steps) = run_policy(|obs| if obs[2] + 0.1 * obs[3] > 0.0 { 1 } else { 0 }, 3);
        assert!(steps <= 500);
        assert_eq!(reward, steps as f32);
    }

    #[test]
    fn reset_jitters_initial_state() {
        let mut env = CartPole::new(9);
        let a = env.reset();
        let b = env.reset();
        assert_ne!(a, b);
        assert!(a.iter().all(|v| v.abs() < 0.05));
    }
}
