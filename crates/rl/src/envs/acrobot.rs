//! Acrobot — a two-link underactuated swing-up task (Sutton 1996 / Gym
//! dynamics, simplified Euler integration) for discrete-control
//! experiments beyond the paper's benchmark pairings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

const DT: f32 = 0.2;
const LINK_MASS: f32 = 1.0;
const LINK_LENGTH: f32 = 1.0;
const LINK_COM: f32 = 0.5;
const LINK_MOI: f32 = 1.0;
const GRAVITY: f32 = 9.8;
const MAX_VEL_1: f32 = 4.0 * std::f32::consts::PI;
const MAX_VEL_2: f32 = 9.0 * std::f32::consts::PI;
const MAX_STEPS: usize = 300;

/// The acrobot: two links hanging from a pivot, torque only at the elbow.
/// Swing the tip above the bar (`-cos θ1 - cos(θ1 + θ2) > 1`).
///
/// Observations: `[cos θ1, sin θ1, cos θ2, sin θ2, dθ1, dθ2]` (velocities
/// normalized); actions: 0 (−1 torque), 1 (0), 2 (+1). Reward −1 per step
/// until the goal.
#[derive(Debug)]
pub struct Acrobot {
    theta1: f32,
    theta2: f32,
    dtheta1: f32,
    dtheta2: f32,
    steps: usize,
    done: bool,
    rng: StdRng,
}

impl Acrobot {
    /// A new acrobot with its own seeded RNG for initial-state jitter.
    pub fn new(seed: u64) -> Self {
        Acrobot {
            theta1: 0.0,
            theta2: 0.0,
            dtheta1: 0.0,
            dtheta2: 0.0,
            steps: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn observe(&self) -> Vec<f32> {
        vec![
            self.theta1.cos(),
            self.theta1.sin(),
            self.theta2.cos(),
            self.theta2.sin(),
            self.dtheta1 / MAX_VEL_1,
            self.dtheta2 / MAX_VEL_2,
        ]
    }

    fn tip_height(&self) -> f32 {
        -self.theta1.cos() - (self.theta1 + self.theta2).cos()
    }

    fn dynamics(&mut self, torque: f32) {
        // Standard acrobot equations of motion (Sutton & Barto, eq. form),
        // integrated with two half-steps of explicit Euler.
        for _ in 0..2 {
            let (t1, t2, d1v, d2v) = (self.theta1, self.theta2, self.dtheta1, self.dtheta2);
            let m = LINK_MASS;
            let l1 = LINK_LENGTH;
            let lc = LINK_COM;
            let i = LINK_MOI;
            let g = GRAVITY;
            let d1 = m * lc * lc + m * (l1 * l1 + lc * lc + 2.0 * l1 * lc * t2.cos()) + 2.0 * i;
            let d2 = m * (lc * lc + l1 * lc * t2.cos()) + i;
            let phi2 = m * lc * g * (t1 + t2 - std::f32::consts::FRAC_PI_2).cos();
            let phi1 = -m * l1 * lc * d2v * d2v * t2.sin()
                - 2.0 * m * l1 * lc * d2v * d1v * t2.sin()
                + (m * lc + m * l1) * g * (t1 - std::f32::consts::FRAC_PI_2).cos()
                + phi2;
            let ddtheta2 = (torque + d2 / d1 * phi1 - m * l1 * lc * d1v * d1v * t2.sin() - phi2)
                / (m * lc * lc + i - d2 * d2 / d1);
            let ddtheta1 = -(d2 * ddtheta2 + phi1) / d1;
            self.dtheta1 = (d1v + ddtheta1 * DT / 2.0).clamp(-MAX_VEL_1, MAX_VEL_1);
            self.dtheta2 = (d2v + ddtheta2 * DT / 2.0).clamp(-MAX_VEL_2, MAX_VEL_2);
            self.theta1 += self.dtheta1 * DT / 2.0;
            self.theta2 += self.dtheta2 * DT / 2.0;
        }
    }
}

impl Environment for Acrobot {
    fn obs_dim(&self) -> usize {
        6
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(3)
    }

    fn reset(&mut self) -> Vec<f32> {
        self.theta1 = self.rng.gen_range(-0.1..0.1);
        self.theta2 = self.rng.gen_range(-0.1..0.1);
        self.dtheta1 = self.rng.gen_range(-0.1..0.1);
        self.dtheta2 = self.rng.gen_range(-0.1..0.1);
        self.steps = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let a = action.discrete();
        assert!(a < 3, "acrobot action out of range");
        self.dynamics(a as f32 - 1.0);
        self.steps += 1;
        let at_goal = self.tip_height() > 1.0;
        self.done = at_goal || self.steps >= MAX_STEPS;
        StepOutcome {
            obs: self.observe(),
            reward: -1.0,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "Acrobot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_hanging_below_the_bar() {
        let mut env = Acrobot::new(0);
        env.reset();
        assert!(
            env.tip_height() < 0.0,
            "initial tip height {}",
            env.tip_height()
        );
    }

    #[test]
    fn zero_torque_never_swings_up() {
        let mut env = Acrobot::new(1);
        env.reset();
        let mut steps = 0;
        loop {
            let out = env.step(&Action::Discrete(1));
            steps += 1;
            if out.done {
                break;
            }
        }
        assert_eq!(steps, MAX_STEPS, "passive acrobot must time out");
    }

    #[test]
    fn resonant_torque_swings_up() {
        // Torque with the elbow's velocity direction pumps energy in.
        let mut env = Acrobot::new(2);
        let mut obs = env.reset();
        let mut steps = 0;
        loop {
            let a = if obs[5] >= 0.0 { 2 } else { 0 };
            let out = env.step(&Action::Discrete(a));
            obs = out.obs;
            steps += 1;
            if out.done {
                break;
            }
        }
        assert!(
            steps < MAX_STEPS,
            "energy pumping should reach the goal, took {steps}"
        );
    }

    #[test]
    fn velocities_stay_clamped() {
        let mut env = Acrobot::new(3);
        env.reset();
        for _ in 0..100 {
            let out = env.step(&Action::Discrete(2));
            assert!(out.obs[4].abs() <= 1.0 + 1e-6);
            assert!(out.obs[5].abs() <= 1.0 + 1e-6);
            if out.done {
                break;
            }
        }
    }

    #[test]
    fn observations_are_unit_circle_pairs() {
        let mut env = Acrobot::new(4);
        let obs = env.reset();
        assert!((obs[0] * obs[0] + obs[1] * obs[1] - 1.0).abs() < 1e-5);
        assert!((obs[2] * obs[2] + obs[3] * obs[3] - 1.0).abs() < 1e-5);
    }
}
