//! Pendulum swing-up — the continuous-control stand-in for MuJoCo
//! "Hopper" (paper §5.1): a low-dimensional torque-control task with dense
//! negative reward, used by PPO and DDPG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

const MAX_SPEED: f32 = 8.0;
const MAX_TORQUE: f32 = 2.0;
const DT: f32 = 0.05;
const GRAVITY: f32 = 10.0;
const MASS: f32 = 1.0;
const LENGTH: f32 = 1.0;
const MAX_STEPS: usize = 200;

/// The classic pendulum swing-up. Observations are
/// `[cos θ, sin θ, θ_dot / MAX_SPEED]`; the single action is a torque in
/// `[-2, 2]`. Reward is `-(θ² + 0.1·θ_dot² + 0.001·u²)` per step, so the
/// best achievable episode reward is slightly below zero.
#[derive(Debug)]
pub struct Pendulum {
    theta: f32,
    theta_dot: f32,
    steps: usize,
    done: bool,
    balance: bool,
    rng: StdRng,
}

impl Pendulum {
    /// The classic swing-up task: episodes start anywhere on the circle.
    pub fn new(seed: u64) -> Self {
        Pendulum {
            theta: 0.0,
            theta_dot: 0.0,
            steps: 0,
            done: true,
            balance: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The balance variant: episodes start near upright (|θ| ≤ 0.8), so the
    /// task is stabilization rather than swing-up — analogous to Hopper's
    /// "stay upright" objective and learnable at laptop sample budgets.
    pub fn balance(seed: u64) -> Self {
        let mut env = Pendulum::new(seed);
        env.balance = true;
        env
    }

    fn observe(&self) -> Vec<f32> {
        vec![
            self.theta.cos(),
            self.theta.sin(),
            self.theta_dot / MAX_SPEED,
        ]
    }
}

/// Wraps an angle to `[-π, π]`.
fn wrap_angle(theta: f32) -> f32 {
    let two_pi = 2.0 * std::f32::consts::PI;
    let mut t = (theta + std::f32::consts::PI) % two_pi;
    if t < 0.0 {
        t += two_pi;
    }
    t - std::f32::consts::PI
}

impl Environment for Pendulum {
    fn obs_dim(&self) -> usize {
        3
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous {
            dim: 1,
            low: -MAX_TORQUE,
            high: MAX_TORQUE,
        }
    }

    fn reset(&mut self) -> Vec<f32> {
        if self.balance {
            self.theta = self.rng.gen_range(-0.8..0.8);
            self.theta_dot = self.rng.gen_range(-0.5..0.5);
        } else {
            self.theta = self
                .rng
                .gen_range(-std::f32::consts::PI..std::f32::consts::PI);
            self.theta_dot = self.rng.gen_range(-1.0..1.0);
        }
        self.steps = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let u = action.continuous()[0].clamp(-MAX_TORQUE, MAX_TORQUE);
        let theta = wrap_angle(self.theta);
        let cost = theta * theta + 0.1 * self.theta_dot * self.theta_dot + 0.001 * u * u;
        let acc = 3.0 * GRAVITY / (2.0 * LENGTH) * theta.sin() + 3.0 / (MASS * LENGTH * LENGTH) * u;
        self.theta_dot = (self.theta_dot + acc * DT).clamp(-MAX_SPEED, MAX_SPEED);
        self.theta += self.theta_dot * DT;
        self.steps += 1;
        self.done = self.steps >= MAX_STEPS;
        StepOutcome {
            obs: self.observe(),
            reward: -cost,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "Pendulum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_last_exactly_200_steps() {
        let mut env = Pendulum::new(0);
        env.reset();
        let mut steps = 0;
        loop {
            let out = env.step(&Action::Continuous(vec![0.0]));
            steps += 1;
            if out.done {
                break;
            }
        }
        assert_eq!(steps, MAX_STEPS);
    }

    #[test]
    fn reward_is_negative_cost() {
        let mut env = Pendulum::new(1);
        env.reset();
        let out = env.step(&Action::Continuous(vec![0.5]));
        assert!(out.reward <= 0.0);
    }

    #[test]
    fn torque_is_clamped() {
        // A huge torque must behave exactly like the max torque.
        let run = |u: f32| {
            let mut env = Pendulum::new(7);
            env.reset();
            env.step(&Action::Continuous(vec![u])).obs
        };
        let a = run(100.0);
        let mut env = Pendulum::new(7);
        env.reset();
        let b = env.step(&Action::Continuous(vec![MAX_TORQUE])).obs;
        // Same trajectory except the control-cost term (which only affects
        // reward, not state).
        assert_eq!(a, b);
    }

    #[test]
    fn swing_up_policy_outscores_zero_policy() {
        // Energy pumping below the horizon plus PD stabilization near the
        // top is the classic hand-crafted swing-up controller.
        // Average several episodes: both policies see the same seeded
        // initial-state sequence, and a single unlucky start (e.g. arriving
        // at the top too fast for the PD catch) cannot dominate the
        // comparison.
        const EPISODES: usize = 6;
        type Policy = Box<dyn FnMut(&[f32]) -> f32>;
        let total = |mut policy: Policy| {
            let mut env = Pendulum::new(5);
            let mut sum = 0.0;
            for _ in 0..EPISODES {
                let mut obs = env.reset();
                loop {
                    let out = env.step(&Action::Continuous(vec![policy(&obs)]));
                    sum += out.reward;
                    obs = out.obs;
                    if out.done {
                        break;
                    }
                }
            }
            sum / EPISODES as f32
        };
        let swing_up = |o: &[f32]| {
            let theta = o[1].atan2(o[0]);
            let theta_dot = o[2] * MAX_SPEED;
            // Energy shaping: with θ̈ = 15·sin θ + 3u the mechanical energy
            // is E = ½·θ_dot² + 15·cos θ (upright rest: E = 15), and
            // dE/dt = 3·u·θ_dot — so torque along θ_dot scaled by the
            // energy deficit regulates E to the homoclinic orbit and the
            // pendulum arrives at the top slowly enough for the PD catch.
            let energy = 0.5 * theta_dot * theta_dot + 15.0 * theta.cos();
            if o[0] > 0.95 && theta_dot.abs() < 2.5 {
                (-12.0 * theta - 2.0 * theta_dot).clamp(-MAX_TORQUE, MAX_TORQUE)
            } else {
                (0.6 * (15.0 - energy) * theta_dot.signum()).clamp(-MAX_TORQUE, MAX_TORQUE)
            }
        };
        let smart = total(Box::new(swing_up));
        let zero = total(Box::new(|_: &[f32]| 0.0));
        assert!(
            smart > zero + 300.0,
            "swing-up {smart:.0} should clearly beat zero {zero:.0}"
        );
    }

    #[test]
    fn wrap_angle_stays_in_range() {
        for t in [-10.0f32, -3.2, 0.0, 3.2, 10.0, 100.0] {
            let w = wrap_angle(t);
            assert!((-std::f32::consts::PI..=std::f32::consts::PI).contains(&w));
        }
    }
}
