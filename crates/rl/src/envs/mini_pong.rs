//! MiniPong — a pixel-observation paddle game, the closest stand-in for
//! the paper's "Atari Pong" benchmark: the agent sees a raw frame (a
//! single-channel grid) and controls a paddle with discrete actions,
//! typically through a convolutional Q-network ([`iswitch_tensor::Conv2d`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

/// Frame side length (observations are `SIZE * SIZE` floats).
pub const SIZE: usize = 12;
const PADDLE_HALF: isize = 1;
const MAX_STEPS: usize = 400;
const BALL: f32 = 1.0;
const PADDLE: f32 = 0.5;

/// A single-channel pong: the ball bounces off the walls and ceiling; the
/// agent's paddle guards the floor. +1 for each paddle hit, −1 and episode
/// end on a miss. Actions: 0 = left, 1 = stay, 2 = right.
#[derive(Debug)]
pub struct MiniPong {
    ball_x: isize,
    ball_y: isize,
    vel_x: isize,
    vel_y: isize,
    paddle_x: isize,
    steps: usize,
    done: bool,
    rng: StdRng,
}

impl MiniPong {
    /// A new game with its own seeded RNG for serves.
    pub fn new(seed: u64) -> Self {
        MiniPong {
            ball_x: 0,
            ball_y: 0,
            vel_x: 1,
            vel_y: 1,
            paddle_x: SIZE as isize / 2,
            steps: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn serve(&mut self) {
        self.ball_x = self.rng.gen_range(2..SIZE as isize - 2);
        self.ball_y = 1;
        self.vel_x = if self.rng.gen() { 1 } else { -1 };
        self.vel_y = 1;
    }

    fn frame(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; SIZE * SIZE];
        out[self.ball_y as usize * SIZE + self.ball_x as usize] = BALL;
        let py = SIZE - 1;
        for dx in -PADDLE_HALF..=PADDLE_HALF {
            let x = (self.paddle_x + dx).clamp(0, SIZE as isize - 1) as usize;
            out[py * SIZE + x] = PADDLE;
        }
        out
    }

    /// Ball x position (exposed for heuristic policies in tests/examples).
    pub fn ball_x(&self) -> usize {
        self.ball_x as usize
    }

    /// Paddle center x position.
    pub fn paddle_x(&self) -> usize {
        self.paddle_x as usize
    }
}

impl Environment for MiniPong {
    fn obs_dim(&self) -> usize {
        SIZE * SIZE
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(3)
    }

    fn reset(&mut self) -> Vec<f32> {
        self.paddle_x = SIZE as isize / 2;
        self.steps = 0;
        self.done = false;
        self.serve();
        self.frame()
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let a = action.discrete();
        assert!(a < 3, "mini-pong action out of range");
        self.paddle_x =
            (self.paddle_x + a as isize - 1).clamp(PADDLE_HALF, SIZE as isize - 1 - PADDLE_HALF);

        // Advance the ball with wall bounces.
        let mut reward = 0.0;
        self.ball_x += self.vel_x;
        self.ball_y += self.vel_y;
        if self.ball_x <= 0 || self.ball_x >= SIZE as isize - 1 {
            self.vel_x = -self.vel_x;
            self.ball_x = self.ball_x.clamp(0, SIZE as isize - 1);
        }
        if self.ball_y <= 0 {
            self.vel_y = 1;
            self.ball_y = 0;
        }
        if self.ball_y >= SIZE as isize - 1 {
            // Floor: paddle save or miss.
            if (self.ball_x - self.paddle_x).abs() <= PADDLE_HALF {
                reward = 1.0;
                self.vel_y = -1;
                self.ball_y = SIZE as isize - 2;
            } else {
                reward = -1.0;
                self.done = true;
            }
        }
        self.steps += 1;
        if self.steps >= MAX_STEPS {
            self.done = true;
        }
        StepOutcome {
            obs: self.frame(),
            reward,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "MiniPong"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn play(mut policy: impl FnMut(&MiniPong) -> usize, seed: u64) -> f32 {
        let mut env = MiniPong::new(seed);
        env.reset();
        let mut total = 0.0;
        loop {
            let a = policy(&env);
            let out = env.step(&Action::Discrete(a));
            total += out.reward;
            if out.done {
                return total;
            }
        }
    }

    #[test]
    fn frame_contains_ball_and_paddle() {
        let mut env = MiniPong::new(0);
        let obs = env.reset();
        assert_eq!(obs.len(), SIZE * SIZE);
        assert_eq!(obs.iter().filter(|&&v| v == BALL).count(), 1);
        assert_eq!(obs.iter().filter(|&&v| v == PADDLE).count(), 3);
    }

    #[test]
    fn static_paddle_eventually_misses() {
        let r = play(|_| 1, 0);
        assert!(r < 3.0, "a static paddle should not rack up saves, got {r}");
    }

    #[test]
    fn ball_tracking_policy_scores_well() {
        let track = |env: &MiniPong| {
            if env.ball_x() > env.paddle_x() {
                2
            } else if env.ball_x() < env.paddle_x() {
                0
            } else {
                1
            }
        };
        let r = play(track, 0);
        assert!(r >= 10.0, "tracking should save many balls, got {r}");
    }

    #[test]
    fn miss_ends_episode_with_penalty() {
        let mut env = MiniPong::new(1);
        env.reset();
        // Park the paddle in the left corner and wait.
        let mut last;
        loop {
            let out = env.step(&Action::Discrete(0));
            last = out.reward;
            if out.done {
                break;
            }
        }
        // Either a miss (-1) or the step cap (reward 0 on the last step).
        assert!(last == -1.0 || last == 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut env = MiniPong::new(seed);
            env.reset();
            (0..30)
                .map(|i| {
                    let out = env.step(&Action::Discrete(i % 3));
                    let bits = out.obs.iter().sum::<f32>().to_bits();
                    if out.done {
                        env.reset();
                    }
                    bits
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
