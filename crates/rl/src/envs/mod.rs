//! Self-contained environments standing in for the paper's benchmarks.
//!
//! | Paper benchmark | Environment here | Algorithm |
//! |---|---|---|
//! | Atari Pong | [`CartPole`] | DQN |
//! | Atari Qbert | [`GridWorld`] | A2C |
//! | MuJoCo Hopper | [`Pendulum`] | PPO |
//! | MuJoCo HalfCheetah | [`CheetahLite`] | DDPG |
//!
//! [`Acrobot`] and [`MountainCar`] extend the suite beyond the paper's
//! pairings for additional discrete-control experiments, and [`MiniPong`]
//! provides true pixel observations for convolutional Q-networks.

mod acrobot;
mod cart_pole;
mod cheetah_lite;
mod grid_world;
mod mini_pong;
mod mountain_car;
mod pendulum;

pub use acrobot::Acrobot;
pub use cart_pole::CartPole;
pub use cheetah_lite::CheetahLite;
pub use grid_world::GridWorld;
pub use mini_pong::{MiniPong, SIZE as MINI_PONG_SIZE};
pub use mountain_car::MountainCar;
pub use pendulum::Pendulum;
