//! MountainCar — a second discrete-control task (classic Moore 1990 /
//! Gym dynamics) exercising sparse-reward exploration, available for
//! experiments beyond the paper's four benchmark pairings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{Action, ActionSpace, Environment, StepOutcome};

const MIN_POS: f32 = -1.2;
const MAX_POS: f32 = 0.6;
const MAX_SPEED: f32 = 0.07;
const GOAL_POS: f32 = 0.5;
const FORCE: f32 = 0.001;
const GRAVITY: f32 = 0.0025;
const MAX_STEPS: usize = 200;

/// The underpowered car in a valley. Observations are
/// `[position, velocity]`; actions are 0 (push left), 1 (coast),
/// 2 (push right). Reward is −1 per step until the goal at `x ≥ 0.5`.
#[derive(Debug)]
pub struct MountainCar {
    position: f32,
    velocity: f32,
    steps: usize,
    done: bool,
    rng: StdRng,
}

impl MountainCar {
    /// A new car with its own seeded RNG for initial positions.
    pub fn new(seed: u64) -> Self {
        MountainCar {
            position: 0.0,
            velocity: 0.0,
            steps: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Environment for MountainCar {
    fn obs_dim(&self) -> usize {
        2
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(3)
    }

    fn reset(&mut self) -> Vec<f32> {
        self.position = self.rng.gen_range(-0.6..-0.4);
        self.velocity = 0.0;
        self.steps = 0;
        self.done = false;
        vec![self.position, self.velocity]
    }

    fn step(&mut self, action: &Action) -> StepOutcome {
        assert!(!self.done, "step() after done without reset()");
        let a = action.discrete();
        assert!(a < 3, "mountain-car action out of range");
        let push = (a as f32 - 1.0) * FORCE;
        self.velocity = (self.velocity + push - GRAVITY * (3.0 * self.position).cos())
            .clamp(-MAX_SPEED, MAX_SPEED);
        self.position = (self.position + self.velocity).clamp(MIN_POS, MAX_POS);
        if self.position <= MIN_POS && self.velocity < 0.0 {
            self.velocity = 0.0;
        }
        self.steps += 1;
        let at_goal = self.position >= GOAL_POS;
        self.done = at_goal || self.steps >= MAX_STEPS;
        StepOutcome {
            obs: vec![self.position, self.velocity],
            reward: -1.0,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "MountainCar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mut policy: impl FnMut(&[f32]) -> usize, seed: u64) -> (f32, bool) {
        let mut env = MountainCar::new(seed);
        let mut obs = env.reset();
        let mut total = 0.0;
        loop {
            let out = env.step(&Action::Discrete(policy(&obs)));
            total += out.reward;
            obs = out.obs;
            if out.done {
                return (total, obs[0] >= GOAL_POS);
            }
        }
    }

    #[test]
    fn coasting_never_reaches_the_goal() {
        let (reward, reached) = run(|_| 1, 0);
        assert!(!reached);
        assert_eq!(reward, -(MAX_STEPS as f32));
    }

    #[test]
    fn constant_right_push_is_not_enough() {
        // The defining property: the car is underpowered.
        let (_, reached) = run(|_| 2, 0);
        assert!(!reached, "direct push must fail on MountainCar");
    }

    #[test]
    fn momentum_policy_reaches_the_goal() {
        // Push in the direction of travel to pump energy.
        let (reward, reached) = run(|o| if o[1] >= 0.0 { 2 } else { 0 }, 0);
        assert!(reached, "energy pumping should solve it");
        assert!(reward > -(MAX_STEPS as f32));
    }

    #[test]
    fn velocity_stays_clamped() {
        let mut env = MountainCar::new(3);
        let mut obs = env.reset();
        for _ in 0..MAX_STEPS {
            let out = env.step(&Action::Discrete(if obs[1] >= 0.0 { 2 } else { 0 }));
            obs = out.obs;
            assert!(obs[1].abs() <= MAX_SPEED + 1e-6);
            assert!((MIN_POS..=MAX_POS).contains(&obs[0]));
            if out.done {
                break;
            }
        }
    }
}
