//! Experience replay for off-policy algorithms (DQN, DDPG).

use rand::rngs::StdRng;
use rand::Rng;

use crate::env::Action;

/// One environment transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f32>,
    /// Action taken.
    pub action: Action,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_obs: Vec<f32>,
    /// Whether the episode ended at this step.
    pub done: bool,
}

/// A bounded FIFO replay buffer with uniform sampling.
///
/// # Examples
///
/// ```
/// use iswitch_rl::{Action, ReplayBuffer, Transition};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut buf = ReplayBuffer::new(100);
/// buf.push(Transition {
///     obs: vec![0.0],
///     action: Action::Discrete(0),
///     reward: 1.0,
///     next_obs: vec![1.0],
///     done: false,
/// });
/// let mut rng = StdRng::seed_from_u64(0);
/// let batch = buf.sample(1, &mut rng);
/// assert_eq!(batch.len(), 1);
/// ```
#[derive(Debug)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<Transition>,
    write: usize,
}

impl ReplayBuffer {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            data: Vec::new(),
            write: 0,
        }
    }

    /// Appends a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.write] = t;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Uniformly samples `batch` transitions with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample(&self, batch: usize, rng: &mut StdRng) -> Vec<&Transition> {
        assert!(
            !self.data.is_empty(),
            "cannot sample an empty replay buffer"
        );
        (0..batch)
            .map(|_| &self.data[rng.gen_range(0..self.data.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f32) -> Transition {
        Transition {
            obs: vec![0.0],
            action: Action::Discrete(0),
            reward,
            next_obs: vec![0.0],
            done: false,
        }
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f32> = buf.data.iter().map(|x| x.reward).collect();
        // Slots hold the 3 newest transitions (2, 3, 4) in ring order.
        let mut sorted = rewards.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(t(i as f32));
        }
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            buf.sample(5, &mut rng)
                .iter()
                .map(|t| t.reward)
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
    }

    #[test]
    #[should_panic(expected = "empty replay buffer")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(1, &mut rng);
    }
}
