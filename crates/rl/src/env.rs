//! The environment abstraction shared by all RL algorithms.

use serde::{Deserialize, Serialize};

/// The action space of an environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActionSpace {
    /// `n` distinct actions, indexed `0..n`.
    Discrete(usize),
    /// A box of `dim` continuous values, each clamped to `[low, high]`.
    Continuous {
        /// Number of action dimensions.
        dim: usize,
        /// Per-dimension lower bound.
        low: f32,
        /// Per-dimension upper bound.
        high: f32,
    },
}

impl ActionSpace {
    /// Number of scalar outputs a policy head needs for this space.
    pub fn policy_outputs(&self) -> usize {
        match *self {
            ActionSpace::Discrete(n) => n,
            ActionSpace::Continuous { dim, .. } => dim,
        }
    }
}

/// An action taken by an agent.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Index into a discrete action set.
    Discrete(usize),
    /// Continuous action vector.
    Continuous(Vec<f32>),
}

impl Action {
    /// The discrete index.
    ///
    /// # Panics
    ///
    /// Panics if the action is continuous.
    pub fn discrete(&self) -> usize {
        match self {
            Action::Discrete(a) => *a,
            Action::Continuous(_) => panic!("expected a discrete action"),
        }
    }

    /// The continuous vector.
    ///
    /// # Panics
    ///
    /// Panics if the action is discrete.
    pub fn continuous(&self) -> &[f32] {
        match self {
            Action::Continuous(a) => a,
            Action::Discrete(_) => panic!("expected a continuous action"),
        }
    }
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Observation after the action took effect.
    pub obs: Vec<f32>,
    /// Scalar reward.
    pub reward: f32,
    /// Whether the episode terminated (including time limits).
    pub done: bool,
}

/// A reinforcement-learning environment (paper §2.1, Fig. 2).
///
/// Environments own their randomness (seeded at construction) so that
/// distributed workers exploring "in parallel" are reproducible.
pub trait Environment: Send {
    /// Dimensionality of observation vectors.
    fn obs_dim(&self) -> usize;

    /// The action space.
    fn action_space(&self) -> ActionSpace;

    /// Starts a new episode, returning the initial observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Advances one step.
    ///
    /// # Panics
    ///
    /// Panics if the action kind does not match [`Environment::action_space`],
    /// or if called after `done` without an intervening [`Environment::reset`].
    fn step(&mut self, action: &Action) -> StepOutcome;

    /// A human-readable environment name.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_outputs_by_space() {
        assert_eq!(ActionSpace::Discrete(4).policy_outputs(), 4);
        assert_eq!(
            ActionSpace::Continuous {
                dim: 2,
                low: -1.0,
                high: 1.0
            }
            .policy_outputs(),
            2
        );
    }

    #[test]
    fn action_accessors() {
        assert_eq!(Action::Discrete(3).discrete(), 3);
        assert_eq!(Action::Continuous(vec![0.5]).continuous(), &[0.5]);
    }

    #[test]
    #[should_panic(expected = "expected a discrete action")]
    fn wrong_accessor_panics() {
        let _ = Action::Continuous(vec![0.0]).discrete();
    }
}
