//! Helpers shared by the four training algorithms.

use iswitch_tensor::Optimizer;

/// Tracks episode rewards across step-at-a-time interaction.
#[derive(Debug, Clone, Default)]
pub struct RewardTracker {
    completed: Vec<f32>,
    current: f32,
}

impl RewardTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        RewardTracker::default()
    }

    /// Records one step's reward, closing the episode when `done`.
    pub fn record(&mut self, reward: f32, done: bool) {
        self.current += reward;
        if done {
            self.completed.push(self.current);
            self.current = 0.0;
        }
    }

    /// Rewards of all completed episodes, in order.
    pub fn episodes(&self) -> &[f32] {
        &self.completed
    }

    /// Mean reward over the last `n` completed episodes — the paper's
    /// "Final Average Reward" metric uses `n = 10` (§5.2).
    pub fn average_last(&self, n: usize) -> Option<f32> {
        if self.completed.is_empty() {
            return None;
        }
        let tail = &self.completed[self.completed.len().saturating_sub(n)..];
        Some(tail.iter().sum::<f32>() / tail.len() as f32)
    }
}

/// Discounted n-step returns with a bootstrap value for the final state.
///
/// `R_t = r_t + γ·R_{t+1}`, restarting at terminal steps; `bootstrap` seeds
/// the recursion when the rollout ends mid-episode.
pub fn discounted_returns(rewards: &[f32], dones: &[bool], gamma: f32, bootstrap: f32) -> Vec<f32> {
    assert_eq!(rewards.len(), dones.len(), "one done flag per reward");
    let mut out = vec![0.0; rewards.len()];
    let mut acc = bootstrap;
    for i in (0..rewards.len()).rev() {
        if dones[i] {
            acc = 0.0;
        }
        acc = rewards[i] + gamma * acc;
        out[i] = acc;
    }
    out
}

/// Generalized advantage estimation (Schulman et al.), as used by PPO.
///
/// Returns `(advantages, value targets)`; `values` must have one entry per
/// step and `last_value` bootstraps the final state.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    gamma: f32,
    lambda: f32,
    last_value: f32,
) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(rewards.len(), values.len());
    assert_eq!(rewards.len(), dones.len());
    let n = rewards.len();
    let mut adv = vec![0.0; n];
    let mut acc = 0.0;
    for i in (0..n).rev() {
        let next_value = if dones[i] {
            0.0
        } else if i + 1 < n {
            values[i + 1]
        } else {
            last_value
        };
        let not_done = if dones[i] { 0.0 } else { 1.0 };
        let delta = rewards[i] + gamma * next_value - values[i];
        acc = delta + gamma * lambda * not_done * acc;
        adv[i] = acc;
    }
    let returns: Vec<f32> = adv.iter().zip(values).map(|(a, v)| a + v).collect();
    (adv, returns)
}

/// Normalizes a slice to zero mean / unit variance in place (no-op for
/// fewer than two elements or ~zero variance).
pub fn normalize(xs: &mut [f32]) {
    if xs.len() < 2 {
        return;
    }
    let n = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-6 {
        return;
    }
    for x in xs {
        *x = (*x - mean) / std;
    }
}

/// An optimizer that applies different inner optimizers to disjoint ranges
/// of the flat parameter vector — e.g. DDPG's separate actor/critic
/// learning rates.
pub struct SplitOptimizer {
    parts: Vec<(usize, Box<dyn Optimizer + Send>)>,
}

impl SplitOptimizer {
    /// Builds from `(range length, optimizer)` pairs covering the vector in
    /// order.
    pub fn new(parts: Vec<(usize, Box<dyn Optimizer + Send>)>) -> Self {
        assert!(!parts.is_empty(), "SplitOptimizer needs at least one part");
        SplitOptimizer { parts }
    }
}

impl Optimizer for SplitOptimizer {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        let total: usize = self.parts.iter().map(|(n, _)| n).sum();
        assert_eq!(
            params.len(),
            total,
            "SplitOptimizer ranges must cover all params"
        );
        assert_eq!(params.len(), grads.len());
        let mut off = 0;
        for (n, opt) in &mut self.parts {
            opt.step(&mut params[off..off + *n], &grads[off..off + *n]);
            off += *n;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.parts[0].1.learning_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iswitch_tensor::Sgd;

    #[test]
    fn reward_tracker_closes_episodes() {
        let mut t = RewardTracker::new();
        t.record(1.0, false);
        t.record(2.0, true);
        t.record(5.0, true);
        assert_eq!(t.episodes(), &[3.0, 5.0]);
        assert_eq!(t.average_last(10), Some(4.0));
        assert_eq!(t.average_last(1), Some(5.0));
    }

    #[test]
    fn reward_tracker_empty_has_no_average() {
        assert_eq!(RewardTracker::new().average_last(10), None);
    }

    #[test]
    fn returns_discount_and_restart_at_terminals() {
        let r = discounted_returns(&[1.0, 1.0, 1.0], &[false, true, false], 0.5, 8.0);
        // step2: 1 + 0.5*8 = 5; step1 terminal: 1; step0: 1 + 0.5*1 = 1.5
        assert_eq!(r, vec![1.5, 1.0, 5.0]);
    }

    #[test]
    fn gae_with_lambda_one_equals_monte_carlo_advantage() {
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.9, 1.0, 0.0);
        let mc = discounted_returns(&rewards, &dones, 0.9, 0.0);
        for i in 0..3 {
            assert!((adv[i] - (mc[i] - values[i])).abs() < 1e-5);
            assert!((ret[i] - mc[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gae_bootstraps_with_last_value() {
        let (adv, _) = gae(&[0.0], &[0.0], &[false], 1.0, 1.0, 7.0);
        assert_eq!(adv, vec![7.0]);
    }

    #[test]
    fn normalize_produces_zero_mean_unit_var() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut xs);
        let mean: f32 = xs.iter().sum::<f32>() / 4.0;
        let var: f32 = xs.iter().map(|x| x * x).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_skips_constant_input() {
        let mut xs = vec![2.0, 2.0];
        normalize(&mut xs);
        assert_eq!(xs, vec![2.0, 2.0]);
    }

    #[test]
    fn split_optimizer_applies_ranges_independently() {
        let mut opt = SplitOptimizer::new(vec![
            (1, Box::new(Sgd::new(1.0))),
            (1, Box::new(Sgd::new(0.1))),
        ]);
        let mut p = vec![0.0f32, 0.0];
        opt.step(&mut p, &[1.0, 1.0]);
        assert!((p[0] + 1.0).abs() < 1e-6);
        assert!((p[1] + 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cover all params")]
    fn split_optimizer_rejects_bad_coverage() {
        let mut opt = SplitOptimizer::new(vec![(1, Box::new(Sgd::new(1.0)) as _)]);
        opt.step(&mut [0.0, 0.0], &[1.0, 1.0]);
    }
}
