//! The four RL training algorithms the paper benchmarks, behind one
//! [`Agent`] interface suited to distributed gradient aggregation.

mod a2c;
mod common;
mod ddpg;
mod dqn;
mod gaussian;
mod ppo;

pub use a2c::{A2cAgent, A2cConfig};
pub use common::{discounted_returns, gae, normalize, RewardTracker, SplitOptimizer};
pub use ddpg::{DdpgAgent, DdpgConfig};
pub use dqn::{ConvFront, DqnAgent, DqnConfig};
pub use gaussian::{standard_normal, GaussianPolicy};
pub use ppo::{PpoAgent, PpoConfig};

use iswitch_tensor::Optimizer;

/// A distributed-training worker's local algorithm state.
///
/// This is the seam between the RL substrate and the cluster harness: a
/// worker repeatedly calls [`Agent::compute_gradient`] (the paper's "Local
/// Gradient Computing" stage), the cluster aggregates the flat gradient
/// vectors (in a parameter server, a Ring-AllReduce, or the iSwitch
/// accelerator), and every worker applies the *same* aggregated gradient to
/// identical weights — the paper's decentralized weight storage (§4.1).
pub trait Agent: Send {
    /// The algorithm's name ("DQN", "A2C", "PPO", "DDPG").
    fn name(&self) -> &'static str;

    /// Number of scalar parameters in the gradient vector.
    fn param_count(&self) -> usize;

    /// Current flat parameter vector.
    fn params(&mut self) -> Vec<f32>;

    /// Overwrites the flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not equal [`Agent::param_count`].
    fn set_params(&mut self, params: &[f32]);

    /// Runs local environment interaction and computes one local gradient
    /// at the current parameters. May return an all-zero gradient during
    /// warm-up (e.g. before the replay buffer has enough data).
    fn compute_gradient(&mut self) -> Vec<f32>;

    /// Builds the algorithm-appropriate optimizer for the aggregated
    /// gradient. Every worker (or the driver) holds an identical replica.
    fn make_optimizer(&self) -> Box<dyn Optimizer + Send>;

    /// Housekeeping after a global weight update has been installed via
    /// [`Agent::set_params`] — target-network syncs, schedule ticks, etc.
    fn on_weights_updated(&mut self) {}

    /// Rewards of completed episodes so far, in completion order.
    fn episode_rewards(&self) -> &[f32];

    /// The paper's "Final Average Reward": mean over the last 10 episodes.
    fn final_average_reward(&self) -> Option<f32> {
        let eps = self.episode_rewards();
        if eps.is_empty() {
            return None;
        }
        let tail = &eps[eps.len().saturating_sub(10)..];
        Some(tail.iter().sum::<f32>() / tail.len() as f32)
    }
}
