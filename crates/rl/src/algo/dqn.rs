//! Deep Q-Network (Mnih et al. 2013/2015) — paper benchmark #1.
//!
//! Standard DQN with experience replay, a target network, ε-greedy
//! exploration, and the Huber TD loss. Each [`DqnAgent::compute_gradient`]
//! call performs a few environment steps and one minibatch backward pass —
//! one distributed-training iteration.

use iswitch_tensor::{
    grad_vec, huber, mlp, param_vec, set_param_vec, zero_grads, Activation, Adam, Conv2d, Linear,
    Module, Optimizer, ReLU, Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algo::common::RewardTracker;
use crate::algo::Agent;
use crate::env::{Action, ActionSpace, Environment};
use crate::replay::{ReplayBuffer, Transition};

/// An optional convolutional front end for pixel observations (the
/// paper's Atari benchmarks use conv stacks ahead of the dense layers).
#[derive(Debug, Clone)]
pub struct ConvFront {
    /// Input channels.
    pub channels: usize,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Convolution output channels.
    pub conv_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

/// Hyperparameters for [`DqnAgent`].
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Hidden layer widths of the Q-network.
    pub hidden: Vec<usize>,
    /// Convolutional front end for pixel observations, if any.
    pub conv: Option<ConvFront>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Environment steps per gradient computation.
    pub steps_per_iter: usize,
    /// Minimum transitions before learning starts.
    pub learn_start: usize,
    /// Initial exploration rate.
    pub eps_start: f32,
    /// Final exploration rate.
    pub eps_end: f32,
    /// Iterations over which ε anneals linearly.
    pub eps_decay_iters: usize,
    /// Weight updates between target-network syncs.
    pub target_sync_every: usize,
    /// Use Double-DQN target selection (argmax from the online network,
    /// value from the target network) — reduces Q-value overestimation.
    pub double_dqn: bool,
    /// Clip the gradient to this L2 norm, if set.
    pub max_grad_norm: Option<f32>,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            hidden: vec![64, 64],
            conv: None,
            gamma: 0.99,
            lr: 1e-3,
            replay_capacity: 10_000,
            batch_size: 64,
            steps_per_iter: 4,
            learn_start: 500,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay_iters: 2_000,
            target_sync_every: 100,
            double_dqn: false,
            max_grad_norm: None,
        }
    }
}

/// Builds the Q-network: an optional conv front end followed by the MLP.
fn build_q_net(obs_dim: usize, n_actions: usize, cfg: &DqnConfig, rng: &mut StdRng) -> Sequential {
    match &cfg.conv {
        None => {
            let mut sizes = vec![obs_dim];
            sizes.extend_from_slice(&cfg.hidden);
            sizes.push(n_actions);
            mlp(&sizes, Activation::ReLU, None, rng)
        }
        Some(cf) => {
            assert_eq!(
                cf.channels * cf.height * cf.width,
                obs_dim,
                "conv front end does not match the observation size"
            );
            let conv = Conv2d::new(
                cf.channels,
                cf.conv_channels,
                cf.height,
                cf.width,
                cf.kernel,
                cf.stride,
                rng,
            );
            let mut dense_in = conv.out_len();
            let mut net = Sequential::new().push(conv).push(ReLU::new());
            for &h in &cfg.hidden {
                net = net.push(Linear::new(dense_in, h, rng)).push(ReLU::new());
                dense_in = h;
            }
            net.push(Linear::new(dense_in, n_actions, rng))
        }
    }
}

/// A DQN worker bound to one environment instance.
pub struct DqnAgent {
    cfg: DqnConfig,
    env: Box<dyn Environment>,
    q_net: Sequential,
    target_net: Sequential,
    replay: ReplayBuffer,
    rng: StdRng,
    obs: Vec<f32>,
    n_actions: usize,
    iters: usize,
    updates: usize,
    tracker: RewardTracker,
}

impl DqnAgent {
    /// Creates a worker over `env` with fresh networks.
    ///
    /// # Panics
    ///
    /// Panics if the environment is not discrete-action.
    pub fn new(env: Box<dyn Environment>, cfg: DqnConfig, seed: u64) -> Self {
        let ActionSpace::Discrete(n_actions) = env.action_space() else {
            panic!("DQN requires a discrete action space");
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q_net = build_q_net(env.obs_dim(), n_actions, &cfg, &mut rng);
        let mut target_net = build_q_net(env.obs_dim(), n_actions, &cfg, &mut rng);
        let w = param_vec(&mut q_net);
        set_param_vec(&mut target_net, &w);
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let mut agent = DqnAgent {
            cfg,
            env,
            q_net,
            target_net,
            replay,
            rng,
            obs: Vec::new(),
            n_actions,
            iters: 0,
            updates: 0,
            tracker: RewardTracker::new(),
        };
        agent.obs = agent.env.reset();
        agent
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        let frac = (self.iters as f32 / self.cfg.eps_decay_iters as f32).min(1.0);
        self.cfg.eps_start + frac * (self.cfg.eps_end - self.cfg.eps_start)
    }

    fn act(&mut self) -> usize {
        if self.rng.gen::<f32>() < self.epsilon() {
            self.rng.gen_range(0..self.n_actions)
        } else {
            let input = Tensor::from_shape_vec(&[1, self.obs.len()], self.obs.clone());
            let q = self.q_net.forward(&input);
            q.argmax_rows()[0]
        }
    }

    fn interact(&mut self) {
        for _ in 0..self.cfg.steps_per_iter {
            let a = self.act();
            let out = self.env.step(&Action::Discrete(a));
            self.tracker.record(out.reward, out.done);
            self.replay.push(Transition {
                obs: std::mem::take(&mut self.obs),
                action: Action::Discrete(a),
                reward: out.reward,
                next_obs: out.obs.clone(),
                done: out.done,
            });
            self.obs = if out.done { self.env.reset() } else { out.obs };
        }
    }
}

impl Agent for DqnAgent {
    fn name(&self) -> &'static str {
        "DQN"
    }

    fn param_count(&self) -> usize {
        self.q_net.param_count()
    }

    fn params(&mut self) -> Vec<f32> {
        param_vec(&mut self.q_net)
    }

    fn set_params(&mut self, params: &[f32]) {
        set_param_vec(&mut self.q_net, params);
    }

    fn compute_gradient(&mut self) -> Vec<f32> {
        self.iters += 1;
        self.interact();
        if self.replay.len() < self.cfg.learn_start {
            return vec![0.0; self.param_count()];
        }
        let batch = self.replay.sample(self.cfg.batch_size, &mut self.rng);
        let b = batch.len();
        let obs_dim = batch[0].obs.len();
        let mut obs = Vec::with_capacity(b * obs_dim);
        let mut next_obs = Vec::with_capacity(b * obs_dim);
        let mut actions = Vec::with_capacity(b);
        let mut rewards = Vec::with_capacity(b);
        let mut dones = Vec::with_capacity(b);
        for t in &batch {
            obs.extend_from_slice(&t.obs);
            next_obs.extend_from_slice(&t.next_obs);
            actions.push(t.action.discrete());
            rewards.push(t.reward);
            dones.push(t.done);
        }
        let obs = Tensor::from_shape_vec(&[b, obs_dim], obs);
        let next_obs = Tensor::from_shape_vec(&[b, obs_dim], next_obs);

        // TD target: r + γ · Q_target(s', a*) for non-terminal steps, where
        // a* is argmax over the target net (vanilla) or the online net
        // (Double DQN).
        let next_q = self.target_net.forward(&next_obs);
        let online_next = if self.cfg.double_dqn {
            Some(self.q_net.forward(&next_obs))
        } else {
            None
        };
        let mut targets = Vec::with_capacity(b);
        for i in 0..b {
            let max_next = match &online_next {
                Some(online) => {
                    let a_star = online
                        .row(i)
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.partial_cmp(y.1).expect("no NaN"))
                        .map(|(j, _)| j)
                        .expect("non-empty row");
                    next_q.at(i, a_star)
                }
                None => next_q
                    .row(i)
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max),
            };
            let bootstrap = if dones[i] {
                0.0
            } else {
                self.cfg.gamma * max_next
            };
            targets.push(rewards[i] + bootstrap);
        }

        zero_grads(&mut self.q_net);
        let q = self.q_net.forward(&obs);
        // Select Q(s, a) per row; loss only flows through the taken action.
        let mut chosen = Vec::with_capacity(b);
        for (i, &a) in actions.iter().enumerate() {
            chosen.push(q.at(i, a));
        }
        let (_, dchosen) = huber(&Tensor::from_vec(chosen), &Tensor::from_vec(targets), 1.0);
        let mut dq = Tensor::zeros(&[b, self.n_actions]);
        for (i, &a) in actions.iter().enumerate() {
            dq.data_mut()[i * self.n_actions + a] = dchosen.data()[i];
        }
        self.q_net.backward(&dq);
        let mut grad = grad_vec(&mut self.q_net);
        if let Some(max_norm) = self.cfg.max_grad_norm {
            iswitch_tensor::clip_grad_norm(&mut grad, max_norm);
        }
        grad
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer + Send> {
        Box::new(Adam::new(self.cfg.lr))
    }

    fn on_weights_updated(&mut self) {
        self.updates += 1;
        if self.updates.is_multiple_of(self.cfg.target_sync_every) {
            let w = param_vec(&mut self.q_net);
            set_param_vec(&mut self.target_net, &w);
        }
    }

    fn episode_rewards(&self) -> &[f32] {
        self.tracker.episodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::CartPole;

    fn quick_agent(seed: u64) -> DqnAgent {
        let cfg = DqnConfig {
            hidden: vec![32, 32],
            learn_start: 50,
            eps_decay_iters: 300,
            ..DqnConfig::default()
        };
        DqnAgent::new(Box::new(CartPole::new(seed)), cfg, seed)
    }

    #[test]
    fn warmup_returns_zero_gradient() {
        let mut agent = quick_agent(0);
        let g = agent.compute_gradient();
        assert!(g.iter().all(|&x| x == 0.0));
        assert_eq!(g.len(), agent.param_count());
    }

    #[test]
    fn gradient_becomes_nonzero_after_warmup() {
        let mut agent = quick_agent(0);
        let mut g = Vec::new();
        for _ in 0..30 {
            g = agent.compute_gradient();
        }
        assert!(g.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn epsilon_anneals_to_floor() {
        let mut agent = quick_agent(1);
        assert!((agent.epsilon() - 1.0).abs() < 1e-6);
        for _ in 0..400 {
            let _ = agent.compute_gradient();
        }
        assert!((agent.epsilon() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn target_net_syncs_on_schedule() {
        let mut agent = quick_agent(2);
        let w0 = param_vec(&mut agent.target_net);
        // Change q-net weights and push `target_sync_every` updates.
        let mut w = agent.params();
        for x in &mut w {
            *x += 0.5;
        }
        agent.set_params(&w);
        for _ in 0..agent.cfg.target_sync_every {
            agent.on_weights_updated();
        }
        let wt = param_vec(&mut agent.target_net);
        assert_ne!(w0, wt);
        assert_eq!(wt, agent.params());
    }

    #[test]
    fn double_dqn_targets_differ_from_vanilla() {
        // Same replay contents, same weights: the Double-DQN gradient must
        // generally differ because target selection differs once the online
        // and target nets diverge.
        let mk = |double| {
            let cfg = DqnConfig {
                hidden: vec![16],
                learn_start: 40,
                double_dqn: double,
                ..DqnConfig::default()
            };
            let mut a = DqnAgent::new(Box::new(CartPole::new(3)), cfg, 3);
            // Desynchronize online vs target nets. The perturbation must be
            // heterogeneous: adding one constant to every weight shifts both
            // actions' Q-values by (almost) the same amount, so the online
            // and target argmax can coincide on every sampled state and the
            // two target rules collapse to the same gradient.
            let mut w = a.params();
            for (i, x) in w.iter_mut().enumerate() {
                // Cheap position hash in [-0.4, 0.4]: any periodic pattern
                // (constant, alternating) repeats across a layer's rows and
                // collapses back into a common shift.
                let h = (i as u32).wrapping_mul(2_654_435_761) >> 16;
                *x += 0.8 * (h as f32 / 65_535.0) - 0.4;
            }
            a.set_params(&w);
            let mut g = Vec::new();
            for _ in 0..20 {
                g = a.compute_gradient();
            }
            g
        };
        assert_ne!(mk(false), mk(true));
    }

    #[test]
    fn gradient_clipping_bounds_the_norm() {
        let cfg = DqnConfig {
            hidden: vec![16],
            learn_start: 40,
            max_grad_norm: Some(0.05),
            ..DqnConfig::default()
        };
        let mut a = DqnAgent::new(Box::new(CartPole::new(3)), cfg, 3);
        for _ in 0..30 {
            let g = a.compute_gradient();
            let norm = g.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 0.05 + 1e-5, "norm {norm}");
        }
    }

    #[test]
    fn conv_front_end_builds_and_learns_mechanically() {
        use crate::envs::{MiniPong, MINI_PONG_SIZE};
        let cfg = DqnConfig {
            hidden: vec![32],
            conv: Some(ConvFront {
                channels: 1,
                height: MINI_PONG_SIZE,
                width: MINI_PONG_SIZE,
                conv_channels: 4,
                kernel: 4,
                stride: 2,
            }),
            learn_start: 64,
            batch_size: 16,
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(Box::new(MiniPong::new(0)), cfg, 0);
        // Conv(1->4,k4,s2) on 12x12 -> 4 x 5 x 5 = 100 features.
        assert_eq!(
            agent.param_count(),
            (4 * 16 + 4) + (100 * 32 + 32) + (32 * 3 + 3)
        );
        let mut g = Vec::new();
        for _ in 0..40 {
            g = agent.compute_gradient();
        }
        assert_eq!(g.len(), agent.param_count());
        assert!(g.iter().any(|&x| x != 0.0), "conv DQN gradient all zero");
        // One optimizer step changes the parameters.
        let before = agent.params();
        let mut opt = agent.make_optimizer();
        let mut params = before.clone();
        opt.step(&mut params, &g);
        agent.set_params(&params);
        assert_ne!(agent.params(), before);
    }

    #[test]
    #[should_panic(expected = "does not match the observation size")]
    fn conv_front_end_validates_dimensions() {
        use crate::envs::MiniPong;
        let cfg = DqnConfig {
            conv: Some(ConvFront {
                channels: 1,
                height: 8,
                width: 8,
                conv_channels: 4,
                kernel: 3,
                stride: 1,
            }),
            ..DqnConfig::default()
        };
        let _ = DqnAgent::new(Box::new(MiniPong::new(0)), cfg, 0);
    }

    #[test]
    fn single_worker_training_improves_reward() {
        // A compact end-to-end sanity check that the learning loop learns,
        // using the default (experiment) configuration.
        let mut agent = DqnAgent::new(Box::new(CartPole::new(5)), DqnConfig::default(), 5 + 0x9e37);
        let mut opt = agent.make_optimizer();
        let mut params = agent.params();
        for _ in 0..2500 {
            let g = agent.compute_gradient();
            opt.step(&mut params, &g);
            agent.set_params(&params);
            agent.on_weights_updated();
        }
        let eps = agent.episode_rewards();
        assert!(eps.len() > 5, "should complete several episodes");
        let early: f32 = eps[..3].iter().sum::<f32>() / 3.0;
        let late = agent.final_average_reward().unwrap();
        assert!(
            late > early + 50.0 && late > 100.0,
            "expected improvement: early {early:.1} vs late {late:.1}"
        );
    }
}
