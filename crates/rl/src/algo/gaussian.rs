//! A diagonal-Gaussian policy head for continuous control (PPO).
//!
//! The mean comes from an MLP; the per-dimension log standard deviation is
//! a state-independent learnable parameter, matching the reference PPO
//! implementation the paper benchmarks.

use iswitch_tensor::{
    grad_vec, mlp, param_vec, set_param_vec, zero_grads, Activation, Module, Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::Rng;

/// One `N(0, 1)` draw via Box–Muller (keeps the dependency set minimal).
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

const LOG_2PI: f32 = 1.837_877_1;

/// A Gaussian policy `π(a|s) = N(μ_net(s), diag(exp(log_std))²)`.
pub struct GaussianPolicy {
    net: Sequential,
    act_dim: usize,
    log_std: Vec<f32>,
    grad_log_std: Vec<f32>,
}

impl GaussianPolicy {
    /// Builds a policy whose mean MLP has the given `sizes`
    /// (`[obs, hidden.., act_dim]`), with all log-stds at `init_log_std`.
    pub fn new(sizes: &[usize], init_log_std: f32, rng: &mut StdRng) -> Self {
        let act_dim = *sizes.last().expect("sizes non-empty");
        GaussianPolicy {
            net: mlp(sizes, Activation::Tanh, None, rng),
            act_dim,
            log_std: vec![init_log_std; act_dim],
            grad_log_std: vec![0.0; act_dim],
        }
    }

    /// Action dimensionality.
    pub fn act_dim(&self) -> usize {
        self.act_dim
    }

    /// Total parameter count (mean net + log-stds).
    pub fn param_count(&self) -> usize {
        self.net.param_count() + self.act_dim
    }

    /// Flat parameters: mean-net parameters followed by log-stds.
    pub fn params(&mut self) -> Vec<f32> {
        let mut p = param_vec(&mut self.net);
        p.extend_from_slice(&self.log_std);
        p
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let split = self.net.param_count();
        set_param_vec(&mut self.net, &flat[..split]);
        self.log_std.copy_from_slice(&flat[split..]);
    }

    /// Flat accumulated gradients, aligned with [`GaussianPolicy::params`].
    pub fn grads(&mut self) -> Vec<f32> {
        let mut g = grad_vec(&mut self.net);
        g.extend_from_slice(&self.grad_log_std);
        g
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        zero_grads(&mut self.net);
        self.grad_log_std.fill(0.0);
    }

    /// Forward pass producing the action means for a `[batch, obs]` input
    /// (caches activations for a later [`GaussianPolicy::backward_logp`]).
    pub fn forward_mean(&mut self, obs: &Tensor) -> Tensor {
        self.net.forward(obs)
    }

    /// Samples an action for a single mean row.
    pub fn sample(&self, mean: &[f32], rng: &mut StdRng) -> Vec<f32> {
        assert_eq!(mean.len(), self.act_dim);
        mean.iter()
            .zip(&self.log_std)
            .map(|(&m, &ls)| m + ls.exp() * standard_normal(rng))
            .collect()
    }

    /// Log-density of each row's action under the row's Gaussian.
    pub fn log_prob(&self, means: &Tensor, actions: &Tensor) -> Vec<f32> {
        assert_eq!(
            means.shape(),
            actions.shape(),
            "means/actions shape mismatch"
        );
        let d = self.act_dim;
        let mut out = Vec::with_capacity(means.rows());
        for r in 0..means.rows() {
            let mut lp = 0.0;
            for j in 0..d {
                let sigma = self.log_std[j].exp();
                let z = (actions.at(r, j) - means.at(r, j)) / sigma;
                lp += -0.5 * (z * z + LOG_2PI) - self.log_std[j];
            }
            out.push(lp);
        }
        out
    }

    /// Accumulates the gradient of `Σ_r coeff_r · log π(a_r | s_r)` into the
    /// policy parameters. `means` must come from the most recent
    /// [`GaussianPolicy::forward_mean`] on the matching observations.
    pub fn backward_logp(&mut self, means: &Tensor, actions: &Tensor, coeffs: &[f32]) {
        assert_eq!(coeffs.len(), means.rows(), "one coefficient per row");
        let d = self.act_dim;
        let mut dmean = Tensor::zeros(&[means.rows(), d]);
        for (r, &coeff) in coeffs.iter().enumerate() {
            for j in 0..d {
                let sigma = self.log_std[j].exp();
                let diff = actions.at(r, j) - means.at(r, j);
                // d logp / d mu = (a - mu) / sigma^2
                dmean.data_mut()[r * d + j] = coeff * diff / (sigma * sigma);
                // d logp / d log_sigma = z^2 - 1
                let z = diff / sigma;
                self.grad_log_std[j] += coeff * (z * z - 1.0);
            }
        }
        self.net.backward(&dmean);
    }

    /// Policy entropy (state-independent for a fixed-std Gaussian) and its
    /// gradient contribution: `dH/d log_std_j = 1`.
    pub fn entropy(&self) -> f32 {
        self.log_std
            .iter()
            .map(|ls| ls + 0.5 * (LOG_2PI + 1.0))
            .sum()
    }

    /// Adds `coeff` to every log-std gradient — the entropy-bonus gradient.
    pub fn add_entropy_grad(&mut self, coeff: f32) {
        for g in &mut self.grad_log_std {
            *g += coeff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(0);
        GaussianPolicy::new(&[3, 16, 2], -0.5, &mut rng)
    }

    #[test]
    fn params_round_trip() {
        let mut p = policy();
        let flat = p.params();
        assert_eq!(flat.len(), p.param_count());
        let mut flat2 = flat.clone();
        let n = flat2.len();
        flat2[n - 1] = 0.7;
        p.set_params(&flat2);
        assert_eq!(p.params(), flat2);
        assert_eq!(p.log_std[1], 0.7);
    }

    #[test]
    fn log_prob_peaks_at_mean() {
        let mut p = policy();
        let obs = Tensor::from_rows(vec![vec![0.1, -0.2, 0.3]]);
        let mean = p.forward_mean(&obs);
        let at_mean = p.log_prob(&mean, &mean)[0];
        let off = mean.map(|m| m + 1.0);
        let away = p.log_prob(&mean, &off)[0];
        assert!(at_mean > away);
    }

    #[test]
    fn sampling_tracks_std() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(9);
        let mean = vec![0.0, 0.0];
        let n = 4000;
        let mut sum_sq = [0.0f64; 2];
        for _ in 0..n {
            let a = p.sample(&mean, &mut rng);
            sum_sq[0] += (a[0] as f64).powi(2);
            sum_sq[1] += (a[1] as f64).powi(2);
        }
        let sigma = (-0.5f32).exp() as f64;
        for s in sum_sq {
            let emp = (s / n as f64).sqrt();
            assert!((emp - sigma).abs() < 0.05, "empirical std {emp} vs {sigma}");
        }
        // Deterministic per seed.
        let mut rng2 = StdRng::seed_from_u64(9);
        let mut rng3 = StdRng::seed_from_u64(9);
        assert_eq!(p.sample(&mean, &mut rng2), p.sample(&mean, &mut rng3));
    }

    #[test]
    fn logp_gradient_matches_finite_difference() {
        let mut p = policy();
        let obs = Tensor::from_rows(vec![vec![0.5, -1.0, 0.2], vec![-0.3, 0.8, 0.0]]);
        let actions = Tensor::from_rows(vec![vec![0.4, -0.1], vec![0.0, 0.6]]);
        let coeffs = vec![1.0, -0.5];

        p.zero_grads();
        let means = p.forward_mean(&obs);
        p.backward_logp(&means, &actions, &coeffs);
        let analytic = p.grads();

        let objective = |p: &mut GaussianPolicy| {
            let means = p.forward_mean(&obs);
            let lps = p.log_prob(&means, &actions);
            lps.iter().zip(&coeffs).map(|(l, c)| l * c).sum::<f32>()
        };
        let p0 = p.params();
        let eps = 1e-3;
        for idx in (0..p0.len()).step_by(11) {
            let mut plus = p0.clone();
            plus[idx] += eps;
            p.set_params(&plus);
            let up = objective(&mut p);
            let mut minus = p0.clone();
            minus[idx] -= eps;
            p.set_params(&minus);
            let down = objective(&mut p);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 2e-2 * (1.0 + analytic[idx].abs()),
                "grad mismatch at {idx}: analytic {} vs numeric {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn entropy_increases_with_log_std() {
        let mut p = policy();
        let h0 = p.entropy();
        let mut flat = p.params();
        let n = flat.len();
        flat[n - 1] += 1.0;
        flat[n - 2] += 1.0;
        p.set_params(&flat);
        assert!(p.entropy() > h0);
    }
}
