//! Proximal Policy Optimization (Schulman et al. 2017) — paper benchmark #3.
//!
//! Clipped-surrogate PPO with GAE(λ) advantages and a Gaussian policy for
//! continuous control. A rollout of `horizon` steps is reused for `epochs`
//! optimization passes; **each pass is one distributed-training iteration**
//! (one gradient aggregation), matching how distributed PPO interleaves
//! communication with its inner epochs.

use iswitch_tensor::{
    grad_vec, mlp, mse, param_vec, set_param_vec, zero_grads, Activation, Adam, Module, Optimizer,
    Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::algo::common::{gae, normalize, RewardTracker};
use crate::algo::gaussian::GaussianPolicy;
use crate::algo::Agent;
use crate::env::{Action, ActionSpace, Environment};

/// Hyperparameters for [`PpoAgent`].
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Hidden layer widths (policy mean net and value net).
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// GAE λ.
    pub lam: f32,
    /// Clipping parameter ε.
    pub clip: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Rollout length.
    pub horizon: usize,
    /// Optimization passes per rollout (each is one iteration).
    pub epochs: usize,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Initial log standard deviation of the Gaussian policy.
    pub init_log_std: f32,
    /// Clip the combined gradient to this L2 norm, if set.
    pub max_grad_norm: Option<f32>,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            hidden: vec![64, 64],
            gamma: 0.9,
            lam: 0.95,
            clip: 0.2,
            lr: 3e-4,
            horizon: 200,
            epochs: 10,
            entropy_coef: 0.002,
            value_coef: 0.5,
            init_log_std: 0.0,
            max_grad_norm: None,
        }
    }
}

struct Rollout {
    obs: Tensor,
    actions: Tensor,
    old_logp: Vec<f32>,
    adv: Vec<f32>,
    returns: Vec<f32>,
}

/// A PPO worker bound to one continuous-control environment.
pub struct PpoAgent {
    cfg: PpoConfig,
    env: Box<dyn Environment>,
    policy: GaussianPolicy,
    value: Sequential,
    rng: StdRng,
    obs: Vec<f32>,
    act_dim: usize,
    act_low: f32,
    act_high: f32,
    rollout: Option<Rollout>,
    passes_left: usize,
    tracker: RewardTracker,
}

impl PpoAgent {
    /// Creates a worker over `env` with fresh networks.
    ///
    /// # Panics
    ///
    /// Panics if the environment is not continuous-action.
    pub fn new(env: Box<dyn Environment>, cfg: PpoConfig, seed: u64) -> Self {
        let ActionSpace::Continuous { dim, low, high } = env.action_space() else {
            panic!("PPO here targets continuous action spaces");
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p_sizes = vec![env.obs_dim()];
        p_sizes.extend_from_slice(&cfg.hidden);
        p_sizes.push(dim);
        let mut v_sizes = vec![env.obs_dim()];
        v_sizes.extend_from_slice(&cfg.hidden);
        v_sizes.push(1);
        let policy = GaussianPolicy::new(&p_sizes, cfg.init_log_std, &mut rng);
        let value = mlp(&v_sizes, Activation::Tanh, None, &mut rng);
        let mut agent = PpoAgent {
            cfg,
            env,
            policy,
            value,
            rng,
            obs: Vec::new(),
            act_dim: dim,
            act_low: low,
            act_high: high,
            rollout: None,
            passes_left: 0,
            tracker: RewardTracker::new(),
        };
        agent.obs = agent.env.reset();
        agent
    }

    fn collect_rollout(&mut self) {
        let h = self.cfg.horizon;
        let obs_dim = self.obs.len();
        let mut obs_buf = Vec::with_capacity(h * obs_dim);
        let mut act_buf = Vec::with_capacity(h * self.act_dim);
        let mut rewards = Vec::with_capacity(h);
        let mut dones = Vec::with_capacity(h);
        for _ in 0..h {
            let input = Tensor::from_shape_vec(&[1, obs_dim], self.obs.clone());
            let mean = self.policy.forward_mean(&input);
            let a = self.policy.sample(mean.row(0), &mut self.rng);
            let clamped: Vec<f32> = a
                .iter()
                .map(|x| x.clamp(self.act_low, self.act_high))
                .collect();
            obs_buf.extend_from_slice(&self.obs);
            // Store the *unclamped* sample: log-probs must match the draw.
            act_buf.extend_from_slice(&a);
            let out = self.env.step(&Action::Continuous(clamped));
            self.tracker.record(out.reward, out.done);
            rewards.push(out.reward);
            dones.push(out.done);
            self.obs = if out.done { self.env.reset() } else { out.obs };
        }
        let obs = Tensor::from_shape_vec(&[h, obs_dim], obs_buf);
        let actions = Tensor::from_shape_vec(&[h, self.act_dim], act_buf);

        let values = self.value.forward(&obs).into_data();
        let last_value = if *dones.last().expect("rollout non-empty") {
            0.0
        } else {
            let last = Tensor::from_shape_vec(&[1, obs_dim], self.obs.clone());
            self.value.forward(&last).data()[0]
        };
        let (mut adv, returns) = gae(
            &rewards,
            &values,
            &dones,
            self.cfg.gamma,
            self.cfg.lam,
            last_value,
        );
        normalize(&mut adv);

        let means = self.policy.forward_mean(&obs);
        let old_logp = self.policy.log_prob(&means, &actions);
        self.rollout = Some(Rollout {
            obs,
            actions,
            old_logp,
            adv,
            returns,
        });
        self.passes_left = self.cfg.epochs;
    }
}

impl Agent for PpoAgent {
    fn name(&self) -> &'static str {
        "PPO"
    }

    fn param_count(&self) -> usize {
        self.policy.param_count() + self.value.param_count()
    }

    fn params(&mut self) -> Vec<f32> {
        let mut p = self.policy.params();
        p.extend(param_vec(&mut self.value));
        p
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let split = self.policy.param_count();
        self.policy.set_params(&params[..split]);
        set_param_vec(&mut self.value, &params[split..]);
    }

    fn compute_gradient(&mut self) -> Vec<f32> {
        if self.passes_left == 0 {
            self.collect_rollout();
        }
        self.passes_left -= 1;
        let rollout = self
            .rollout
            .as_ref()
            .expect("rollout present after collect");
        let b = rollout.adv.len() as f32;

        self.policy.zero_grads();
        zero_grads(&mut self.value);

        // Clipped surrogate: for each row the loss contribution is
        // -min(r·A, clip(r, 1±ε)·A); its gradient w.r.t. the new log-prob is
        // -A·r when the unclipped branch is active, else 0.
        let means = self.policy.forward_mean(&rollout.obs);
        let new_logp = self.policy.log_prob(&means, &rollout.actions);
        let mut coeffs = Vec::with_capacity(new_logp.len());
        for (i, &lp_new) in new_logp.iter().enumerate() {
            let ratio = (lp_new - rollout.old_logp[i]).exp();
            let a = rollout.adv[i];
            let unclipped = ratio * a;
            let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip) * a;
            let coeff = if unclipped <= clipped {
                -a * ratio / b
            } else {
                0.0
            };
            coeffs.push(coeff);
        }
        self.policy.backward_logp(&means, &rollout.actions, &coeffs);
        // Entropy bonus (loss -= c·H, H depends only on log_std).
        self.policy.add_entropy_grad(-self.cfg.entropy_coef);

        // Value loss.
        let v = self.value.forward(&rollout.obs);
        let target = Tensor::from_shape_vec(&[rollout.returns.len(), 1], rollout.returns.clone());
        let (_, dv) = mse(&v, &target);
        self.value.backward(&dv.scale(self.cfg.value_coef));

        let mut g = self.policy.grads();
        g.extend(grad_vec(&mut self.value));
        if let Some(max_norm) = self.cfg.max_grad_norm {
            iswitch_tensor::clip_grad_norm(&mut g, max_norm);
        }
        g
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer + Send> {
        Box::new(Adam::new(self.cfg.lr))
    }

    fn episode_rewards(&self) -> &[f32] {
        self.tracker.episodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::Pendulum;

    fn quick_agent(seed: u64) -> PpoAgent {
        PpoAgent::new(
            Box::new(Pendulum::balance(seed)),
            PpoConfig::default(),
            seed,
        )
    }

    #[test]
    fn rollout_is_reused_for_epochs_passes() {
        let mut agent = quick_agent(0);
        let _ = agent.compute_gradient();
        let episodes_after_first = agent.episode_rewards().len();
        for _ in 0..agent.cfg.epochs - 1 {
            let _ = agent.compute_gradient();
        }
        // No new environment interaction during the remaining passes.
        assert_eq!(agent.episode_rewards().len(), episodes_after_first);
        let _ = agent.compute_gradient(); // triggers a fresh rollout
        assert!(agent.tracker.episodes().len() >= episodes_after_first);
    }

    #[test]
    fn later_epochs_clip_some_samples() {
        let mut agent = quick_agent(1);
        let mut opt = agent.make_optimizer();
        let mut params = agent.params();
        // First pass: all ratios are exactly 1 => nothing clipped and the
        // gradient is the vanilla PG gradient. After an update, ratios move.
        let g1 = agent.compute_gradient();
        opt.step(&mut params, &g1);
        agent.set_params(&params);
        let g2 = agent.compute_gradient();
        assert_ne!(g1, g2);
    }

    #[test]
    fn gradient_length_matches_params() {
        let mut agent = quick_agent(2);
        let g = agent.compute_gradient();
        assert_eq!(g.len(), agent.param_count());
        assert!(g.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn training_improves_pendulum_reward() {
        // A 600-step rollout (3 episodes) reused for 5 passes: the default
        // 200-step single-episode rollout gives the on-policy gradient so
        // few samples that whether training climbs within the step budget
        // is a coin flip over seeds, which is luck, not a property worth
        // asserting. With 3 episodes per update the improvement is robust
        // (≈ +400 reward across seeds, against the +200 we require).
        let cfg = PpoConfig {
            horizon: 600,
            epochs: 5,
            ..PpoConfig::default()
        };
        let mut agent = PpoAgent::new(Box::new(Pendulum::balance(5)), cfg, 5);
        let mut opt = agent.make_optimizer();
        let mut params = agent.params();
        for _ in 0..4000 {
            let g = agent.compute_gradient();
            opt.step(&mut params, &g);
            agent.set_params(&params);
        }
        let eps = agent.episode_rewards();
        assert!(eps.len() > 20);
        let early: f32 = eps[..5].iter().sum::<f32>() / 5.0;
        let late = agent.final_average_reward().unwrap();
        assert!(
            late > early + 200.0,
            "expected improvement: early {early:.0} vs late {late:.0}"
        );
    }
}
