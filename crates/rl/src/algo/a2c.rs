//! Advantage Actor-Critic (synchronous A2C) — paper benchmark #2.
//!
//! An n-step actor-critic with an entropy bonus: each
//! [`A2cAgent::compute_gradient`] collects a short rollout, bootstraps
//! returns with the critic, and produces one combined policy+value gradient.

use iswitch_tensor::{
    grad_vec, mlp, mse, param_vec, set_param_vec, softmax, softmax_entropy, zero_grads, Activation,
    Adam, Conv2d, Linear, Module, Optimizer, ReLU, Sequential, Tanh, Tensor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algo::common::{discounted_returns, RewardTracker};
use crate::algo::dqn::ConvFront;
use crate::algo::Agent;
use crate::env::{Action, ActionSpace, Environment};

/// Hyperparameters for [`A2cAgent`].
#[derive(Debug, Clone)]
pub struct A2cConfig {
    /// Hidden layer widths (shared shape for actor and critic).
    pub hidden: Vec<usize>,
    /// Convolutional front end for pixel observations, if any (applied to
    /// both the actor and the critic).
    pub conv: Option<ConvFront>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Rollout length per gradient.
    pub n_steps: usize,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Clip the combined gradient to this L2 norm, if set.
    pub max_grad_norm: Option<f32>,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            hidden: vec![64],
            conv: None,
            gamma: 0.99,
            lr: 3e-3,
            n_steps: 8,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: None,
        }
    }
}

/// Builds an A2C head: optional conv front end, Tanh MLP body.
fn build_a2c_net(obs_dim: usize, outputs: usize, cfg: &A2cConfig, rng: &mut StdRng) -> Sequential {
    match &cfg.conv {
        None => {
            let mut sizes = vec![obs_dim];
            sizes.extend_from_slice(&cfg.hidden);
            sizes.push(outputs);
            mlp(&sizes, Activation::Tanh, None, rng)
        }
        Some(cf) => {
            assert_eq!(
                cf.channels * cf.height * cf.width,
                obs_dim,
                "conv front end does not match the observation size"
            );
            let conv = Conv2d::new(
                cf.channels,
                cf.conv_channels,
                cf.height,
                cf.width,
                cf.kernel,
                cf.stride,
                rng,
            );
            let mut dense_in = conv.out_len();
            let mut net = Sequential::new().push(conv).push(ReLU::new());
            for &h in &cfg.hidden {
                net = net.push(Linear::new(dense_in, h, rng)).push(Tanh::new());
                dense_in = h;
            }
            net.push(Linear::new(dense_in, outputs, rng))
        }
    }
}

/// An A2C worker bound to one environment instance.
pub struct A2cAgent {
    cfg: A2cConfig,
    env: Box<dyn Environment>,
    policy: Sequential,
    value: Sequential,
    rng: StdRng,
    obs: Vec<f32>,
    n_actions: usize,
    tracker: RewardTracker,
}

impl A2cAgent {
    /// Creates a worker over `env` with fresh networks.
    ///
    /// # Panics
    ///
    /// Panics if the environment is not discrete-action.
    pub fn new(env: Box<dyn Environment>, cfg: A2cConfig, seed: u64) -> Self {
        let ActionSpace::Discrete(n_actions) = env.action_space() else {
            panic!("A2C requires a discrete action space");
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = build_a2c_net(env.obs_dim(), n_actions, &cfg, &mut rng);
        let value = build_a2c_net(env.obs_dim(), 1, &cfg, &mut rng);
        let mut agent = A2cAgent {
            cfg,
            env,
            policy,
            value,
            rng,
            obs: Vec::new(),
            n_actions,
            tracker: RewardTracker::new(),
        };
        agent.obs = agent.env.reset();
        agent
    }

    fn sample_action(&mut self, obs: &[f32]) -> usize {
        let input = Tensor::from_shape_vec(&[1, obs.len()], obs.to_vec());
        let logits = self.policy.forward(&input);
        let probs = softmax(&logits);
        let u: f32 = self.rng.gen();
        let mut acc = 0.0;
        for (i, &p) in probs.row(0).iter().enumerate() {
            acc += p;
            if u <= acc {
                return i;
            }
        }
        self.n_actions - 1
    }
}

impl Agent for A2cAgent {
    fn name(&self) -> &'static str {
        "A2C"
    }

    fn param_count(&self) -> usize {
        self.policy.param_count() + self.value.param_count()
    }

    fn params(&mut self) -> Vec<f32> {
        let mut p = param_vec(&mut self.policy);
        p.extend(param_vec(&mut self.value));
        p
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let split = self.policy.param_count();
        set_param_vec(&mut self.policy, &params[..split]);
        set_param_vec(&mut self.value, &params[split..]);
    }

    fn compute_gradient(&mut self) -> Vec<f32> {
        let n = self.cfg.n_steps;
        let obs_dim = self.obs.len();
        let mut obs_buf = Vec::with_capacity(n * obs_dim);
        let mut actions = Vec::with_capacity(n);
        let mut rewards = Vec::with_capacity(n);
        let mut dones = Vec::with_capacity(n);
        for _ in 0..n {
            let a = self.sample_action(&self.obs.clone());
            obs_buf.extend_from_slice(&self.obs);
            let out = self.env.step(&Action::Discrete(a));
            self.tracker.record(out.reward, out.done);
            actions.push(a);
            rewards.push(out.reward);
            dones.push(out.done);
            self.obs = if out.done { self.env.reset() } else { out.obs };
        }
        let obs = Tensor::from_shape_vec(&[n, obs_dim], obs_buf);

        // Bootstrap from the value of the state after the rollout.
        let bootstrap = if *dones.last().expect("rollout non-empty") {
            0.0
        } else {
            let last = Tensor::from_shape_vec(&[1, obs_dim], self.obs.clone());
            self.value.forward(&last).data()[0]
        };
        let returns = discounted_returns(&rewards, &dones, self.cfg.gamma, bootstrap);

        zero_grads(&mut self.policy);
        zero_grads(&mut self.value);

        // Critic: value_coef * MSE(V(s), R).
        let v = self.value.forward(&obs);
        let target = Tensor::from_shape_vec(&[n, 1], returns.clone());
        let (_, dv) = mse(&v, &target);
        self.value.backward(&dv.scale(self.cfg.value_coef));

        // Actor: -(1/n) Σ advantage · log π(a|s) - entropy_coef · H.
        let adv: Vec<f32> = returns.iter().zip(v.data()).map(|(r, v)| r - v).collect();
        let logits = self.policy.forward(&obs);
        let probs = softmax(&logits);
        let mut dlogits = Tensor::zeros(&[n, self.n_actions]);
        for r in 0..n {
            let coeff = adv[r] / n as f32;
            for j in 0..self.n_actions {
                let onehot = if j == actions[r] { 1.0 } else { 0.0 };
                dlogits.data_mut()[r * self.n_actions + j] = coeff * (probs.at(r, j) - onehot);
            }
        }
        let (_, dh) = softmax_entropy(&logits);
        // Maximizing entropy: loss -= coef * H, so subtract its gradient.
        let dlogits = dlogits.sub(&dh.scale(self.cfg.entropy_coef));
        self.policy.backward(&dlogits);

        let mut g = grad_vec(&mut self.policy);
        g.extend(grad_vec(&mut self.value));
        if let Some(max_norm) = self.cfg.max_grad_norm {
            iswitch_tensor::clip_grad_norm(&mut g, max_norm);
        }
        g
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer + Send> {
        Box::new(Adam::new(self.cfg.lr))
    }

    fn episode_rewards(&self) -> &[f32] {
        self.tracker.episodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::GridWorld;

    fn quick_agent(seed: u64) -> A2cAgent {
        A2cAgent::new(
            Box::new(GridWorld::standard(seed)),
            A2cConfig::default(),
            seed,
        )
    }

    #[test]
    fn gradient_has_full_length_and_is_nonzero() {
        let mut agent = quick_agent(0);
        let g = agent.compute_gradient();
        assert_eq!(g.len(), agent.param_count());
        assert!(g.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn params_round_trip_across_both_nets() {
        let mut agent = quick_agent(1);
        let mut p = agent.params();
        p[0] += 1.0;
        let last = p.len() - 1;
        p[last] -= 1.0;
        agent.set_params(&p);
        assert_eq!(agent.params(), p);
    }

    #[test]
    fn conv_a2c_produces_full_gradients_on_pixels() {
        use crate::algo::dqn::ConvFront;
        use crate::envs::{MiniPong, MINI_PONG_SIZE};
        let cfg = A2cConfig {
            hidden: vec![32],
            conv: Some(ConvFront {
                channels: 1,
                height: MINI_PONG_SIZE,
                width: MINI_PONG_SIZE,
                conv_channels: 4,
                kernel: 4,
                stride: 2,
            }),
            ..A2cConfig::default()
        };
        let mut agent = A2cAgent::new(Box::new(MiniPong::new(0)), cfg, 3);
        let g = agent.compute_gradient();
        assert_eq!(g.len(), agent.param_count());
        assert!(g.iter().any(|&x| x != 0.0));
        // Round-trip params through the flat vector.
        let p = agent.params();
        agent.set_params(&p);
        assert_eq!(agent.params(), p);
    }

    #[test]
    fn training_improves_grid_world_reward() {
        let mut agent = quick_agent(11);
        let mut opt = agent.make_optimizer();
        let mut params = agent.params();
        for _ in 0..1500 {
            let g = agent.compute_gradient();
            opt.step(&mut params, &g);
            agent.set_params(&params);
        }
        let eps = agent.episode_rewards();
        assert!(eps.len() > 20);
        let early: f32 = eps[..5].iter().sum::<f32>() / 5.0;
        let late = agent.final_average_reward().unwrap();
        assert!(
            late > early + 0.3,
            "expected improvement: early {early:.2} vs late {late:.2}"
        );
        // A good policy reaches the goal with modest step cost.
        assert!(
            late > 0.0,
            "final policy should reach the goal, got {late:.2}"
        );
    }
}
