//! Deep Deterministic Policy Gradient (Lillicrap et al. 2015) — paper
//! benchmark #4.
//!
//! Actor-critic with a deterministic policy, target networks with soft
//! (Polyak) updates, Gaussian exploration noise, and experience replay. The
//! paper highlights DDPG's *dual model* (actor + critic both travel in the
//! gradient vector, 157.52 KB total in Table 1); here too the flat parameter
//! vector concatenates both networks.

use iswitch_tensor::{
    grad_vec, mlp, mse, param_vec, set_param_vec, zero_grads, Activation, Adam, Module, Optimizer,
    Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::algo::common::{RewardTracker, SplitOptimizer};
use crate::algo::gaussian::standard_normal;
use crate::algo::Agent;
use crate::env::{Action, ActionSpace, Environment};
use crate::replay::{ReplayBuffer, Transition};

/// Hyperparameters for [`DdpgAgent`].
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Hidden layer widths (actor and critic share the shape).
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Polyak soft-update coefficient.
    pub tau: f32,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Environment steps per gradient computation.
    pub steps_per_iter: usize,
    /// Minimum transitions before learning starts.
    pub learn_start: usize,
    /// Exploration noise standard deviation (fraction of action range).
    pub noise_std: f32,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            hidden: vec![64, 64],
            gamma: 0.98,
            actor_lr: 5e-4,
            critic_lr: 2e-3,
            tau: 0.01,
            replay_capacity: 20_000,
            batch_size: 64,
            steps_per_iter: 2,
            learn_start: 400,
            noise_std: 0.15,
        }
    }
}

/// A DDPG worker bound to one continuous-control environment.
pub struct DdpgAgent {
    cfg: DdpgConfig,
    env: Box<dyn Environment>,
    actor: Sequential,
    critic: Sequential,
    target_actor: Sequential,
    target_critic: Sequential,
    replay: ReplayBuffer,
    rng: StdRng,
    obs: Vec<f32>,
    act_dim: usize,
    act_high: f32,
    tracker: RewardTracker,
}

impl DdpgAgent {
    /// Creates a worker over `env` with fresh networks.
    ///
    /// # Panics
    ///
    /// Panics if the environment is not continuous-action.
    pub fn new(env: Box<dyn Environment>, cfg: DdpgConfig, seed: u64) -> Self {
        let ActionSpace::Continuous { dim, high, .. } = env.action_space() else {
            panic!("DDPG requires a continuous action space");
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a_sizes = vec![env.obs_dim()];
        a_sizes.extend_from_slice(&cfg.hidden);
        a_sizes.push(dim);
        let mut c_sizes = vec![env.obs_dim() + dim];
        c_sizes.extend_from_slice(&cfg.hidden);
        c_sizes.push(1);
        let mut actor = mlp(&a_sizes, Activation::ReLU, Some(Activation::Tanh), &mut rng);
        let mut critic = mlp(&c_sizes, Activation::ReLU, None, &mut rng);
        let mut target_actor = mlp(&a_sizes, Activation::ReLU, Some(Activation::Tanh), &mut rng);
        let mut target_critic = mlp(&c_sizes, Activation::ReLU, None, &mut rng);
        let wa = param_vec(&mut actor);
        set_param_vec(&mut target_actor, &wa);
        let wc = param_vec(&mut critic);
        set_param_vec(&mut target_critic, &wc);
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let mut agent = DdpgAgent {
            cfg,
            env,
            actor,
            critic,
            target_actor,
            target_critic,
            replay,
            rng,
            obs: Vec::new(),
            act_dim: dim,
            act_high: high,
            tracker: RewardTracker::new(),
        };
        agent.obs = agent.env.reset();
        agent
    }

    fn act_with_noise(&mut self) -> Vec<f32> {
        let input = Tensor::from_shape_vec(&[1, self.obs.len()], self.obs.clone());
        let a = self.actor.forward(&input);
        a.row(0)
            .iter()
            .map(|&x| {
                let noisy = x * self.act_high
                    + self.cfg.noise_std * self.act_high * standard_normal(&mut self.rng);
                noisy.clamp(-self.act_high, self.act_high)
            })
            .collect()
    }

    fn interact(&mut self) {
        for _ in 0..self.cfg.steps_per_iter {
            let a = self.act_with_noise();
            let out = self.env.step(&Action::Continuous(a.clone()));
            self.tracker.record(out.reward, out.done);
            self.replay.push(Transition {
                obs: std::mem::take(&mut self.obs),
                action: Action::Continuous(a),
                reward: out.reward,
                next_obs: out.obs.clone(),
                done: out.done,
            });
            self.obs = if out.done { self.env.reset() } else { out.obs };
        }
    }

    fn concat_obs_actions(obs: &[f32], obs_dim: usize, actions: &Tensor, scale: f32) -> Tensor {
        let b = actions.rows();
        let act_dim = actions.cols();
        let mut data = Vec::with_capacity(b * (obs_dim + act_dim));
        for r in 0..b {
            data.extend_from_slice(&obs[r * obs_dim..(r + 1) * obs_dim]);
            data.extend(actions.row(r).iter().map(|&a| a * scale));
        }
        Tensor::from_shape_vec(&[b, obs_dim + act_dim], data)
    }
}

impl Agent for DdpgAgent {
    fn name(&self) -> &'static str {
        "DDPG"
    }

    fn param_count(&self) -> usize {
        self.actor.param_count() + self.critic.param_count()
    }

    fn params(&mut self) -> Vec<f32> {
        let mut p = param_vec(&mut self.actor);
        p.extend(param_vec(&mut self.critic));
        p
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let split = self.actor.param_count();
        set_param_vec(&mut self.actor, &params[..split]);
        set_param_vec(&mut self.critic, &params[split..]);
    }

    fn compute_gradient(&mut self) -> Vec<f32> {
        self.interact();
        if self.replay.len() < self.cfg.learn_start {
            return vec![0.0; self.param_count()];
        }
        let batch = self.replay.sample(self.cfg.batch_size, &mut self.rng);
        let b = batch.len();
        let obs_dim = batch[0].obs.len();
        let mut obs = Vec::with_capacity(b * obs_dim);
        let mut next_obs = Vec::with_capacity(b * obs_dim);
        let mut acts = Vec::with_capacity(b * self.act_dim);
        let mut rewards = Vec::with_capacity(b);
        let mut dones = Vec::with_capacity(b);
        for t in &batch {
            obs.extend_from_slice(&t.obs);
            next_obs.extend_from_slice(&t.next_obs);
            acts.extend_from_slice(t.action.continuous());
            rewards.push(t.reward);
            dones.push(t.done);
        }
        let next_obs_t = Tensor::from_shape_vec(&[b, obs_dim], next_obs);

        // Critic target: y = r + γ(1-d)·Q'(s', μ'(s')).
        let next_a = self.target_actor.forward(&next_obs_t);
        let next_in = Self::concat_obs_actions(next_obs_t.data(), obs_dim, &next_a, self.act_high);
        let next_q = self.target_critic.forward(&next_in);
        let mut y = Vec::with_capacity(b);
        for i in 0..b {
            let boot = if dones[i] {
                0.0
            } else {
                self.cfg.gamma * next_q.data()[i]
            };
            y.push(rewards[i] + boot);
        }

        // Critic gradient (replayed actions are already env-scaled).
        zero_grads(&mut self.critic);
        let replayed = Tensor::from_shape_vec(&[b, self.act_dim], acts);
        let critic_in = Self::concat_obs_actions(&obs, obs_dim, &replayed, 1.0);
        let q = self.critic.forward(&critic_in);
        let (_, dq) = mse(&q, &Tensor::from_shape_vec(&[b, 1], y));
        self.critic.backward(&dq);
        let critic_grads = grad_vec(&mut self.critic);

        // Actor gradient: minimize -mean Q(s, μ(s)); chain dQ/da through
        // the actor's tanh output and the action scaling.
        zero_grads(&mut self.actor);
        zero_grads(&mut self.critic); // scratch pass; critic grads saved above
        let obs_t = Tensor::from_shape_vec(&[b, obs_dim], obs);
        let a_pred = self.actor.forward(&obs_t);
        let actor_in = Self::concat_obs_actions(obs_t.data(), obs_dim, &a_pred, self.act_high);
        let _ = self.critic.forward(&actor_in);
        let dq = Tensor::full(&[b, 1], -1.0 / b as f32);
        let dinput = self.critic.backward(&dq);
        // Slice the action columns and undo the scale factor.
        let mut da = Tensor::zeros(&[b, self.act_dim]);
        for r in 0..b {
            for j in 0..self.act_dim {
                da.data_mut()[r * self.act_dim + j] = dinput.at(r, obs_dim + j) * self.act_high;
            }
        }
        self.actor.backward(&da);
        let mut g = grad_vec(&mut self.actor);
        g.extend(critic_grads);
        g
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer + Send> {
        Box::new(SplitOptimizer::new(vec![
            (
                self.actor.param_count(),
                Box::new(Adam::new(self.cfg.actor_lr)),
            ),
            (
                self.critic.param_count(),
                Box::new(Adam::new(self.cfg.critic_lr)),
            ),
        ]))
    }

    fn on_weights_updated(&mut self) {
        let tau = self.cfg.tau;
        let soft = |net: &mut Sequential, target: &mut Sequential| {
            let w = param_vec(net);
            let mut wt = param_vec(target);
            for (t, s) in wt.iter_mut().zip(&w) {
                *t = tau * s + (1.0 - tau) * *t;
            }
            set_param_vec(target, &wt);
        };
        soft(&mut self.actor, &mut self.target_actor);
        soft(&mut self.critic, &mut self.target_critic);
    }

    fn episode_rewards(&self) -> &[f32] {
        self.tracker.episodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::{CheetahLite, Pendulum};

    fn pendulum_agent(seed: u64) -> DdpgAgent {
        let cfg = DdpgConfig {
            learn_start: 200,
            ..DdpgConfig::default()
        };
        DdpgAgent::new(Box::new(Pendulum::new(seed)), cfg, seed)
    }

    #[test]
    fn warmup_returns_zero_gradient() {
        let mut agent = pendulum_agent(0);
        let g = agent.compute_gradient();
        assert!(g.iter().all(|&x| x == 0.0));
        assert_eq!(g.len(), agent.param_count());
    }

    #[test]
    fn gradient_covers_actor_and_critic() {
        let mut agent = pendulum_agent(1);
        let mut g = Vec::new();
        for _ in 0..150 {
            g = agent.compute_gradient();
        }
        let split = agent.actor.param_count();
        assert!(g[..split].iter().any(|&x| x != 0.0), "actor grad all zero");
        assert!(g[split..].iter().any(|&x| x != 0.0), "critic grad all zero");
    }

    #[test]
    fn soft_update_moves_targets_toward_nets() {
        let mut agent = pendulum_agent(2);
        let before = param_vec(&mut agent.target_actor);
        let mut w = agent.params();
        for x in &mut w {
            *x += 1.0;
        }
        agent.set_params(&w);
        agent.on_weights_updated();
        let after = param_vec(&mut agent.target_actor);
        let wa = param_vec(&mut agent.actor);
        for i in 0..before.len() {
            let expect = agent.cfg.tau * wa[i] + (1.0 - agent.cfg.tau) * before[i];
            assert!((after[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn works_on_cheetah_lite_action_arity() {
        let mut agent = DdpgAgent::new(
            Box::new(CheetahLite::new(0)),
            DdpgConfig {
                learn_start: 50,
                ..DdpgConfig::default()
            },
            0,
        );
        for _ in 0..60 {
            let g = agent.compute_gradient();
            assert_eq!(g.len(), agent.param_count());
        }
    }

    #[test]
    fn training_improves_pendulum_reward() {
        let mut agent = pendulum_agent(4);
        let mut opt = agent.make_optimizer();
        let mut params = agent.params();
        for _ in 0..4000 {
            let g = agent.compute_gradient();
            opt.step(&mut params, &g);
            agent.set_params(&params);
            agent.on_weights_updated();
        }
        let eps = agent.episode_rewards();
        assert!(eps.len() > 10);
        let early: f32 = eps[..5].iter().sum::<f32>() / 5.0;
        let late = agent.final_average_reward().unwrap();
        assert!(
            late > early + 100.0,
            "expected improvement: early {early:.0} vs late {late:.0}"
        );
    }
}
