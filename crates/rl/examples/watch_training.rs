//! Watch a single-worker learning curve for any of the four benchmark
//! algorithms — handy when tuning hyperparameters or verifying a change
//! to an algorithm.
//!
//! Usage: `cargo run --release -p iswitch-rl --example watch_training -- [dqn|a2c|ppo|ddpg] [iterations]`

use iswitch_rl::{make_lite_agent, Algorithm};

fn main() {
    let alg = match std::env::args().nth(1).as_deref() {
        Some("dqn") => Algorithm::Dqn,
        Some("a2c") => Algorithm::A2c,
        Some("ddpg") => Algorithm::Ddpg,
        _ => Algorithm::Ppo,
    };
    let iters: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let mut agent = make_lite_agent(alg, 5);
    let mut opt = agent.make_optimizer();
    let mut params = agent.params();
    println!("{alg}: {} parameters, {iters} iterations", params.len());
    for i in 0..iters {
        let g = agent.compute_gradient();
        opt.step(&mut params, &g);
        agent.set_params(&params);
        agent.on_weights_updated();
        if i % (iters / 20).max(1) == 0 {
            println!(
                "iter {i:6}  episodes {:4}  avg10 {:?}",
                agent.episode_rewards().len(),
                agent.final_average_reward()
            );
        }
    }
    println!("final avg10: {:?}", agent.final_average_reward());
}
