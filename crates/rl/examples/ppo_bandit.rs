//! Sanity check: PPO on a one-step continuous bandit with reward
//! `-(a - 1)^2`. A correct policy-gradient implementation drives the
//! Gaussian mean to 1 and the reward to ~0 within a few hundred
//! iterations — a quick way to separate "algorithm is broken" from "task
//! is hard" when working on the PPO machinery.
//!
//! Usage: `cargo run --release -p iswitch-rl --example ppo_bandit`
use iswitch_rl::{Action, ActionSpace, Agent, Environment, PpoAgent, PpoConfig, StepOutcome};

struct Bandit;
impl Environment for Bandit {
    fn obs_dim(&self) -> usize {
        1
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous {
            dim: 1,
            low: -5.0,
            high: 5.0,
        }
    }
    fn reset(&mut self) -> Vec<f32> {
        vec![0.0]
    }
    fn step(&mut self, a: &Action) -> StepOutcome {
        let x = a.continuous()[0];
        StepOutcome {
            obs: vec![0.0],
            reward: -(x - 1.0) * (x - 1.0),
            done: true,
        }
    }
    fn name(&self) -> &'static str {
        "Bandit"
    }
}

fn main() {
    let cfg = PpoConfig {
        horizon: 64,
        epochs: 4,
        gamma: 0.0,
        lam: 1.0,
        lr: 1e-2,
        ..PpoConfig::default()
    };
    let mut agent = PpoAgent::new(Box::new(Bandit), cfg, 0);
    let mut opt = agent.make_optimizer();
    let mut params = agent.params();
    for i in 0..800 {
        let g = agent.compute_gradient();
        opt.step(&mut params, &g);
        agent.set_params(&params);
        if i % 100 == 0 {
            println!("iter {i}: avg10 {:?}", agent.final_average_reward());
        }
    }
    println!("final: {:?}", agent.final_average_reward());
}
