//! Weight initializers.

use rand::rngs::StdRng;
use rand::Rng;

/// Fills `buf` with samples from `U(-limit, limit)`.
pub fn uniform(buf: &mut [f32], limit: f32, rng: &mut StdRng) {
    for x in buf {
        *x = rng.gen_range(-limit..limit);
    }
}

/// Xavier/Glorot uniform initialization for a `fan_in -> fan_out` layer.
pub fn xavier_uniform(buf: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(buf, limit, rng);
}

/// He/Kaiming uniform initialization (for ReLU layers).
pub fn he_uniform(buf: &mut [f32], fan_in: usize, rng: &mut StdRng) {
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform(buf, limit, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f32; 1000];
        xavier_uniform(&mut buf, 50, 50, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(buf.iter().all(|x| x.abs() <= limit));
        // Not degenerate.
        assert!(buf.iter().any(|x| x.abs() > limit / 10.0));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut buf = vec![0.0f32; 16];
            he_uniform(&mut buf, 8, &mut rng);
            buf
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }
}
