//! Neural-network modules with manual backpropagation.
//!
//! The [`Module`] trait is deliberately small: `forward` caches whatever the
//! layer needs, `backward` accumulates parameter gradients and returns the
//! gradient with respect to the input. Parameters and their gradients are
//! exposed through a visitor so they can be flattened into the contiguous
//! gradient vector that iSwitch segments onto the wire.

use rand::rngs::StdRng;

use crate::init;
use crate::tensor::Tensor;

/// A differentiable layer.
pub trait Module: Send {
    /// Computes the layer output for a `[batch, in]` input, caching state
    /// needed by [`Module::backward`].
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out` (`[batch, out]`), **accumulating** into
    /// parameter gradients and returning the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits `(params, grads)` slices of every parameter tensor, in a
    /// stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize;
}

/// Activation function selector for [`mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    ReLU,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation.
    Identity,
}

/// Fully connected layer: `y = x Wᵀ + b` with `W: [out, in]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// A new layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let mut w = Tensor::zeros(&[out_features, in_features]);
        init::xavier_uniform(w.data_mut(), in_features, out_features, rng);
        Linear {
            w,
            b: Tensor::zeros(&[out_features]),
            gw: Tensor::zeros(&[out_features, in_features]),
            gb: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.w.cols()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.w.rows()
    }
}

impl Module for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.cols(),
            self.in_features(),
            "Linear input width mismatch"
        );
        let out = input.matmul_t(&self.w).add_row_broadcast(&self.b);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW += dYᵀ · X ; db += Σ rows dY ; dX = dY · W
        let dw = grad_out.t_matmul(x);
        for (g, d) in self.gw.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        let db = grad_out.sum_rows();
        for (g, d) in self.gb.data_mut().iter_mut().zip(db.data()) {
            *g += d;
        }
        grad_out.matmul(&self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.data_mut(), self.gw.data_mut());
        f(self.b.data_mut(), self.gb.data_mut());
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    /// A new ReLU layer.
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Module for ReLU {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        grad_out.zip_with(x, |g, xi| if xi > 0.0 { g } else { 0.0 })
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn param_count(&self) -> usize {
        0
    }
}

/// Tanh activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// A new Tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Module for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("backward before forward");
        grad_out.zip_with(y, |g, yi| g * (1.0 - yi * yi))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn param_count(&self) -> usize {
        0
    }
}

/// A chain of modules applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// An empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning the chain (builder style).
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

/// Builds a multi-layer perceptron with the given layer `sizes`
/// (input..hidden..output), `hidden` activation between layers, and an
/// optional `output` activation.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
///
/// # Examples
///
/// ```
/// use iswitch_tensor::{mlp, Activation, Module, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = mlp(&[4, 32, 2], Activation::Tanh, None, &mut rng);
/// let out = net.forward(&Tensor::zeros(&[1, 4]));
/// assert_eq!(out.shape(), &[1, 2]);
/// ```
pub fn mlp(
    sizes: &[usize],
    hidden: Activation,
    output: Option<Activation>,
    rng: &mut StdRng,
) -> Sequential {
    assert!(
        sizes.len() >= 2,
        "mlp needs at least input and output sizes"
    );
    let mut seq = Sequential::new();
    for i in 0..sizes.len() - 1 {
        seq = seq.push(Linear::new(sizes[i], sizes[i + 1], rng));
        let act = if i + 2 == sizes.len() {
            output.unwrap_or(Activation::Identity)
        } else {
            hidden
        };
        seq = match act {
            Activation::ReLU => seq.push(ReLU::new()),
            Activation::Tanh => seq.push(Tanh::new()),
            Activation::Identity => seq,
        };
    }
    seq
}

/// Copies all parameters of `m` into one contiguous vector.
pub fn param_vec(m: &mut dyn Module) -> Vec<f32> {
    let mut out = Vec::with_capacity(m.param_count());
    m.visit_params(&mut |p, _| out.extend_from_slice(p));
    out
}

/// Overwrites all parameters of `m` from a flat vector.
///
/// # Panics
///
/// Panics if `flat.len() != m.param_count()`.
pub fn set_param_vec(m: &mut dyn Module, flat: &[f32]) {
    assert_eq!(
        flat.len(),
        m.param_count(),
        "flat parameter length mismatch"
    );
    let mut off = 0;
    m.visit_params(&mut |p, _| {
        p.copy_from_slice(&flat[off..off + p.len()]);
        off += p.len();
    });
}

/// Copies all accumulated gradients of `m` into one contiguous vector.
pub fn grad_vec(m: &mut dyn Module) -> Vec<f32> {
    let mut out = Vec::with_capacity(m.param_count());
    m.visit_params(&mut |_, g| out.extend_from_slice(g));
    out
}

/// Zeroes all accumulated gradients of `m`.
pub fn zero_grads(m: &mut dyn Module) {
    m.visit_params(&mut |_, g| g.fill(0.0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_matches_hand_math() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        set_param_vec(&mut lin, &[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        // W = [[1,2],[3,4]], b = [0.5,-0.5]; x = [1,1] -> [3.5, 6.5]
        let y = lin.forward(&Tensor::from_rows(vec![vec![1.0, 1.0]]));
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn param_vec_round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = mlp(&[3, 5, 2], Activation::ReLU, None, &mut rng);
        let p = param_vec(&mut net);
        assert_eq!(p.len(), net.param_count());
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        let mut p2 = p.clone();
        p2[0] += 1.0;
        set_param_vec(&mut net, &p2);
        assert_eq!(param_vec(&mut net), p2);
    }

    /// Finite-difference check: analytic gradients from backprop must match
    /// numerical gradients of the MSE loss.
    #[test]
    fn backprop_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = mlp(&[3, 8, 6, 2], Activation::Tanh, None, &mut rng);
        let x = Tensor::from_rows(vec![vec![0.3, -0.7, 1.1], vec![0.9, 0.2, -0.4]]);
        let target = Tensor::from_rows(vec![vec![1.0, -1.0], vec![0.0, 0.5]]);

        zero_grads(&mut net);
        let y = net.forward(&x);
        let (_, grad) = mse(&y, &target);
        net.backward(&grad);
        let analytic = grad_vec(&mut net);

        let p0 = param_vec(&mut net);
        let eps = 1e-3f32;
        for idx in (0..p0.len()).step_by(17) {
            let mut loss_at = |delta: f32| {
                let mut p = p0.clone();
                p[idx] += delta;
                set_param_vec(&mut net, &p);
                let y = net.forward(&x);
                mse(&y, &target).0
            };
            let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
            let a = analytic[idx];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                "grad mismatch at {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = mlp(&[2, 4, 1], Activation::ReLU, None, &mut rng);
        let x = Tensor::from_rows(vec![vec![1.0, -1.0]]);
        let t = Tensor::from_rows(vec![vec![0.0]]);

        zero_grads(&mut net);
        let y = net.forward(&x);
        let (_, g) = mse(&y, &t);
        net.backward(&g);
        let once = grad_vec(&mut net);
        let y = net.forward(&x);
        let (_, g) = mse(&y, &t);
        net.backward(&g);
        let twice = grad_vec(&mut net);
        for (a, b) in once.iter().zip(&twice) {
            assert!(
                (b - 2.0 * a).abs() < 1e-4,
                "accumulation broken: {a} vs {b}"
            );
        }
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0]).reshape(&[1, 2]);
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = relu.backward(&Tensor::from_shape_vec(&[1, 2], vec![5.0, 5.0]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_gradient_uses_cached_output() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_shape_vec(&[1, 1], vec![0.0]);
        tanh.forward(&x);
        let g = tanh.backward(&Tensor::from_shape_vec(&[1, 1], vec![3.0]));
        assert_eq!(g.data(), &[3.0]); // tanh'(0) = 1
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        let _ = lin.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn mlp_output_activation_applies() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(
            &[2, 4, 3],
            Activation::ReLU,
            Some(Activation::Tanh),
            &mut rng,
        );
        let y = net.forward(&Tensor::from_rows(vec![vec![10.0, -10.0]]));
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }
}
