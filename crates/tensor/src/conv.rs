//! 2-D convolution for pixel observations.
//!
//! The paper's DQN/A2C benchmarks run on Atari frames through small conv
//! stacks; this module provides a direct (im2col-free, loop-based) Conv2d
//! with manual backprop so pixel-based stand-in environments exercise the
//! same model structure. Layout: tensors are flattened `[batch,
//! channels*height*width]` rows entering the layer, reshaped internally.

use rand::rngs::StdRng;

use crate::init;
use crate::nn::Module;
use crate::tensor::Tensor;

/// A 2-D convolution layer with stride support and no padding.
///
/// Input rows are `in_channels * in_h * in_w` long (channel-major); output
/// rows are `out_channels * out_h * out_w` with
/// `out_h = (in_h - k) / stride + 1` (likewise for width).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    in_h: usize,
    in_w: usize,
    k: usize,
    stride: usize,
    /// Weights `[out_c, in_c, k, k]`, flattened.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// A new conv layer with He-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the input or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(k <= in_h && k <= in_w, "kernel larger than input");
        let fan_in = in_channels * k * k;
        let mut w = vec![0.0; out_channels * in_channels * k * k];
        init::he_uniform(&mut w, fan_in, rng);
        Conv2d {
            in_channels,
            out_channels,
            in_h,
            in_w,
            k,
            stride,
            gw: vec![0.0; w.len()],
            w,
            b: vec![0.0; out_channels],
            gb: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h - self.k) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w - self.k) / self.stride + 1
    }

    /// Length of one output row (`out_channels * out_h * out_w`).
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Length of one input row.
    pub fn in_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    fn w_at(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f32 {
        self.w[((oc * self.in_channels + ic) * self.k + ky) * self.k + kx]
    }

    fn gw_at_mut(&mut self, oc: usize, ic: usize, ky: usize, kx: usize) -> &mut f32 {
        &mut self.gw[((oc * self.in_channels + ic) * self.k + ky) * self.k + kx]
    }
}

impl Module for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.cols(), self.in_len(), "Conv2d input width mismatch");
        let batch = input.rows();
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = Tensor::zeros(&[batch, self.out_len()]);
        for n in 0..batch {
            let row = input.row(n);
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.b[oc];
                        for ic in 0..self.in_channels {
                            let plane = &row[ic * self.in_h * self.in_w..];
                            for ky in 0..self.k {
                                let iy = oy * self.stride + ky;
                                let base = iy * self.in_w + ox * self.stride;
                                for kx in 0..self.k {
                                    acc += self.w_at(oc, ic, ky, kx) * plane[base + kx];
                                }
                            }
                        }
                        out.data_mut()[n * self.out_len() + (oc * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.take().expect("backward before forward");
        let batch = input.rows();
        let (oh, ow) = (self.out_h(), self.out_w());
        assert_eq!(
            grad_out.cols(),
            self.out_len(),
            "Conv2d grad width mismatch"
        );
        let mut grad_in = Tensor::zeros(&[batch, self.in_len()]);
        for n in 0..batch {
            let row = input.row(n).to_vec();
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at(n, (oc * oh + oy) * ow + ox);
                        if g == 0.0 {
                            continue;
                        }
                        self.gb[oc] += g;
                        for ic in 0..self.in_channels {
                            let plane_off = ic * self.in_h * self.in_w;
                            for ky in 0..self.k {
                                let iy = oy * self.stride + ky;
                                let base = plane_off + iy * self.in_w + ox * self.stride;
                                for kx in 0..self.k {
                                    *self.gw_at_mut(oc, ic, ky, kx) += g * row[base + kx];
                                    grad_in.data_mut()[n * self.in_len() + base + kx] +=
                                        g * self.w_at(oc, ic, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cached_input = Some(input);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{grad_vec, param_vec, set_param_vec, zero_grads};
    use crate::{mse, Sequential};
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1, bias 0 on a single channel.
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 1, 1, &mut rng);
        set_param_vec(&mut conv, &[1.0, 0.0]);
        let x = Tensor::from_shape_vec(&[1, 9], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over a 3x3 input = sum of the input.
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 3, 1, &mut rng);
        let mut p = vec![1.0f32; 9];
        p.push(0.5); // bias
        set_param_vec(&mut conv, &p);
        let x = Tensor::from_shape_vec(&[1, 9], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[45.0 + 0.5]);
        assert_eq!(conv.out_h(), 1);
    }

    #[test]
    fn stride_shrinks_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(2, 4, 8, 8, 3, 2, &mut rng);
        assert_eq!(conv.out_h(), 3);
        assert_eq!(conv.out_w(), 3);
        assert_eq!(conv.out_len(), 4 * 9);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn backprop_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Sequential::new()
            .push(Conv2d::new(1, 2, 5, 5, 3, 1, &mut rng))
            .push(crate::ReLU::new())
            .push(crate::Linear::new(2 * 9, 2, &mut rng));
        let x = Tensor::from_shape_vec(
            &[2, 25],
            (0..50)
                .map(|i| ((i * 37) % 11) as f32 / 11.0 - 0.5)
                .collect(),
        );
        let target = Tensor::from_rows(vec![vec![1.0, -0.5], vec![0.2, 0.8]]);

        zero_grads(&mut net);
        let y = net.forward(&x);
        let (_, dy) = mse(&y, &target);
        net.backward(&dy);
        let analytic = grad_vec(&mut net);

        let p0 = param_vec(&mut net);
        let eps = 1e-3f32;
        for idx in (0..p0.len()).step_by(5) {
            let mut loss_at = |delta: f32| {
                let mut p = p0.clone();
                p[idx] += delta;
                set_param_vec(&mut net, &p);
                let y = net.forward(&x);
                mse(&y, &target).0
            };
            let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 2e-2 * (1.0 + analytic[idx].abs()),
                "grad mismatch at {idx}: analytic {} vs numeric {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn gradient_flows_to_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 4, 4, 2, 2, &mut rng);
        let x = Tensor::from_shape_vec(&[1, 16], vec![1.0; 16]);
        let y = conv.forward(&x);
        let gin = conv.backward(&Tensor::from_shape_vec(&[1, y.cols()], vec![1.0; y.cols()]));
        assert_eq!(gin.cols(), 16);
        assert!(gin.data().iter().any(|&g| g != 0.0));
    }

    #[test]
    #[should_panic(expected = "kernel larger than input")]
    fn oversized_kernel_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Conv2d::new(1, 1, 2, 2, 3, 1, &mut rng);
    }
}
