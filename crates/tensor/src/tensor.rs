//! A minimal dense `f32` tensor.
//!
//! Only the operations the RL substrate needs are provided: row-major 2-D
//! matrices (batches of vectors), matrix multiplication, and elementwise
//! arithmetic. Everything is bounds-checked with informative panics —
//! shape bugs should fail loudly in a simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` with a rank of 1 or 2.
///
/// Rank-1 tensors are vectors; rank-2 tensors are `[rows, cols]` matrices.
/// A batch of observations is a `[batch, features]` matrix.
///
/// # Examples
///
/// ```
/// use iswitch_tensor::Tensor;
///
/// let a = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 1 or 2.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            shape.len() == 1 || shape.len() == 2,
            "only rank-1/2 tensors are supported, got shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let mut t = Tensor::zeros(shape);
        t.data.fill(value);
        t
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor from a vector of values.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }

    /// A rank-2 tensor from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let data: Vec<f32> = rows.into_iter().flatten().collect();
        Tensor {
            shape: vec![data.len() / cols, cols],
            data,
        }
    }

    /// A rank-2 tensor wrapping existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_shape_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        assert!(
            shape.len() == 1 || shape.len() == 2,
            "only rank-1/2 supported"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of rows (a rank-1 tensor is a single row).
    pub fn rows(&self) -> usize {
        if self.shape.len() == 2 {
            self.shape[0]
        } else {
            1
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        *self.shape.last().expect("tensor has a shape")
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        assert!(
            r < self.rows(),
            "row {r} out of bounds ({} rows)",
            self.rows()
        );
        &self.data[r * c..(r + 1) * c]
    }

    /// Element at `(r, c)` of a rank-2 tensor.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows() && c < self.cols(),
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols() + c]
    }

    /// Reinterprets as a `[rows, cols]` matrix without copying.
    ///
    /// # Panics
    ///
    /// Panics if the element count does not match.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape to {shape:?} does not preserve element count {}",
            self.data.len()
        );
        self.shape = shape.to_vec();
        self
    }

    /// Matrix product `self · other` for rank-2 operands.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dims disagree: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_t inner dims disagree: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "t_matmul inner dims disagree: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combination of two same-shaped tensors.
    pub fn zip_with(&self, other: &Tensor, mut f: impl FnMut(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds a rank-1 bias to every row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(
            bias.len(),
            self.cols(),
            "bias length must equal column count"
        );
        let mut out = self.clone();
        let c = self.cols();
        for row in out.data.chunks_mut(c) {
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
        out
    }

    /// Column-wise sum, producing a rank-1 tensor of length `cols`.
    pub fn sum_rows(&self) -> Tensor {
        let c = self.cols();
        let mut out = vec![0.0; c];
        for row in self.data.chunks(c) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_vec(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let c = self.cols();
        self.data
            .chunks(c)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in argmax"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        assert_close(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(vec![vec![1.0, 0.5, -1.0], vec![2.0, -2.0, 0.0]]);
        assert_close(a.matmul_t(&b).data(), a.matmul(&b.transpose()).data());
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Tensor::from_rows(vec![vec![1.0, -1.0], vec![0.5, 2.0], vec![3.0, 0.0]]);
        assert_close(a.t_matmul(&b).data(), a.transpose().matmul(&b).data());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = Tensor::from_vec(vec![10.0, 20.0]);
        assert_close(a.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_close(a.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn argmax_rows_picks_per_row() {
        let a = Tensor::from_rows(vec![vec![1.0, 9.0, 2.0], vec![5.0, 0.0, 3.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![3.0, 4.0]);
        assert_close(a.add(&b).data(), &[4.0, 6.0]);
        assert_close(a.sub(&b).data(), &[-2.0, -2.0]);
        assert_close(a.mul(&b).data(), &[3.0, 8.0]);
        assert_close(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = Tensor::zeros(&[2]).add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.at(1, 0), 3.0);
    }
}
