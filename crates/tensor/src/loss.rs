//! Loss functions returning `(loss, gradient-w.r.t.-prediction)` pairs.
//!
//! Each function averages over the batch so gradient magnitudes are
//! batch-size independent, matching the conventions of the reference RL
//! implementations the paper benchmarks.

use crate::tensor::Tensor;

/// Mean-squared error: `mean((pred - target)^2)`.
///
/// Returns the scalar loss and `d loss / d pred`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`, as used by DQN.
pub fn huber(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "huber shape mismatch");
    assert!(delta > 0.0, "delta must be positive");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let grad = pred.zip_with(target, |p, t| {
        let d = p - t;
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            d / n
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            delta * d.signum() / n
        }
    });
    (loss / n, grad)
}

/// Row-wise softmax of logits.
pub fn softmax(logits: &Tensor) -> Tensor {
    let c = logits.cols();
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(c) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    out
}

/// Row-wise log-softmax of logits (numerically stable).
pub fn log_softmax(logits: &Tensor) -> Tensor {
    let c = logits.cols();
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(c) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
        for x in row.iter_mut() {
            *x -= log_sum;
        }
    }
    out
}

/// Cross-entropy between logits and integer class `labels`, averaged over
/// the batch. Returns the loss and the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn cross_entropy_with_logits(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(labels.len(), logits.rows(), "one label per row required");
    let b = logits.rows() as f32;
    let probs = softmax(logits);
    let logp = log_softmax(logits);
    let mut loss = 0.0;
    let mut grad = probs.scale(1.0 / b);
    let c = logits.cols();
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        loss -= logp.at(r, label);
        grad.data_mut()[r * c + label] -= 1.0 / b;
    }
    (loss / b, grad)
}

/// Entropy of each row's softmax distribution, averaged over the batch,
/// with its gradient w.r.t. the logits. Used for the entropy bonus in
/// A2C/PPO.
pub fn softmax_entropy(logits: &Tensor) -> (f32, Tensor) {
    let probs = softmax(logits);
    let logp = log_softmax(logits);
    let b = logits.rows() as f32;
    let c = logits.cols();
    let mut entropy = 0.0;
    for r in 0..logits.rows() {
        for j in 0..c {
            entropy -= probs.at(r, j) * logp.at(r, j);
        }
    }
    entropy /= b;
    // dH/dlogit_k = -p_k * (logp_k + H_row); derive per row.
    let mut grad = Tensor::zeros(&[logits.rows(), c]);
    for r in 0..logits.rows() {
        let mut h_row = 0.0;
        for j in 0..c {
            h_row -= probs.at(r, j) * logp.at(r, j);
        }
        for j in 0..c {
            grad.data_mut()[r * c + j] = -probs.at(r, j) * (logp.at(r, j) + h_row) / b;
        }
    }
    (entropy, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_equal_inputs() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_gradient_is_finite_difference() {
        let p = Tensor::from_vec(vec![0.5, -1.0]);
        let t = Tensor::from_vec(vec![0.0, 0.0]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..2 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let lp = mse(&pp, &t).0;
            pp.data_mut()[i] -= 2.0 * eps;
            let lm = mse(&pp, &t).0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let t = Tensor::from_vec(vec![0.0]);
        let (l_small, g_small) = huber(&Tensor::from_vec(vec![0.5]), &t, 1.0);
        assert!((l_small - 0.125).abs() < 1e-6);
        assert!((g_small.data()[0] - 0.5).abs() < 1e-6);
        let (l_big, g_big) = huber(&Tensor::from_vec(vec![3.0]), &t, 1.0);
        assert!((l_big - 2.5).abs() < 1e-6);
        assert!((g_big.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_rows(vec![vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let logits = Tensor::from_rows(vec![vec![0.1, -2.0, 1.3]]);
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.data().iter().zip(lp.data()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_rows(vec![vec![2.0, 1.0, 0.0]]);
        let (loss, grad) = cross_entropy_with_logits(&logits, &[0]);
        let p = softmax(&logits);
        assert!((grad.at(0, 0) - (p.at(0, 0) - 1.0)).abs() < 1e-5);
        assert!((grad.at(0, 1) - p.at(0, 1)).abs() < 1e-5);
        assert!(loss > 0.0);
    }

    #[test]
    fn cross_entropy_low_when_confident_and_correct() {
        let confident = Tensor::from_rows(vec![vec![10.0, -10.0]]);
        let (l_good, _) = cross_entropy_with_logits(&confident, &[0]);
        let (l_bad, _) = cross_entropy_with_logits(&confident, &[1]);
        assert!(l_good < 1e-3);
        assert!(l_bad > 5.0);
    }

    #[test]
    fn entropy_max_for_uniform_logits() {
        let uniform = Tensor::from_rows(vec![vec![1.0, 1.0, 1.0]]);
        let (h, g) = softmax_entropy(&uniform);
        assert!((h - 3.0f32.ln()).abs() < 1e-5);
        // Gradient at the maximum is ~0.
        assert!(g.data().iter().all(|x| x.abs() < 1e-6));
    }

    #[test]
    fn entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(vec![vec![0.5, -0.3, 1.2]]);
        let (_, g) = softmax_entropy(&logits);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let hp = softmax_entropy(&lp).0;
            lp.data_mut()[i] -= 2.0 * eps;
            let hm = softmax_entropy(&lp).0;
            let numeric = (hp - hm) / (2.0 * eps);
            assert!((numeric - g.data()[i]).abs() < 1e-3, "at {i}");
        }
    }
}
