//! # iswitch-tensor
//!
//! A small, dependency-light tensor and neural-network substrate for the
//! iSwitch (ISCA '19) reproduction. It provides exactly what distributed RL
//! training needs:
//!
//! * dense `f32` [`Tensor`]s with the linear algebra used by MLP policies,
//! * [`Module`]s with **manual backpropagation** ([`Linear`], [`ReLU`],
//!   [`Tanh`], [`Sequential`], the [`mlp`] builder),
//! * parameter/gradient **flattening** ([`param_vec`], [`grad_vec`],
//!   [`set_param_vec`]) — the contiguous gradient vector is the unit that
//!   iSwitch segments into network packets,
//! * losses ([`mse`], [`huber`], [`cross_entropy_with_logits`],
//!   [`softmax_entropy`]) and optimizers ([`Sgd`], [`Adam`]).
//!
//! ## Example
//!
//! ```
//! use iswitch_tensor::{grad_vec, mlp, mse, zero_grads, Activation, Module, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut net = mlp(&[2, 16, 1], Activation::Tanh, None, &mut rng);
//! let x = Tensor::from_rows(vec![vec![0.1, -0.2]]);
//! let target = Tensor::from_rows(vec![vec![1.0]]);
//!
//! zero_grads(&mut net);
//! let y = net.forward(&x);
//! let (_loss, dy) = mse(&y, &target);
//! net.backward(&dy);
//! let gradient_vector = grad_vec(&mut net); // what goes on the wire
//! assert_eq!(gradient_vector.len(), net.param_count());
//! ```

#![warn(missing_docs)]

mod conv;
mod init;
mod loss;
mod nn;
mod optim;
mod tensor;

pub use conv::Conv2d;
pub use init::{he_uniform, uniform, xavier_uniform};
pub use loss::{cross_entropy_with_logits, huber, log_softmax, mse, softmax, softmax_entropy};
pub use nn::{
    grad_vec, mlp, param_vec, set_param_vec, zero_grads, Activation, Linear, Module, ReLU,
    Sequential, Tanh,
};
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use tensor::Tensor;
