//! Optimizers operating on flat parameter/gradient vectors.
//!
//! Distributed RL in this reproduction applies the *aggregated* gradient to
//! an identical optimizer replica on every worker (paper §4.1,
//! "decentralized weight storage"), so optimizers work on the flattened
//! vectors produced by [`crate::grad_vec`] rather than on modules directly.

use serde::{Deserialize, Serialize};

/// An optimizer over flat parameter vectors.
pub trait Optimizer {
    /// Applies one update step: mutates `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the first call's.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum `mu`.
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0,1)");
        let mut s = Sgd::new(lr);
        s.momentum = mu;
        s
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; params.len()];
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter count changed");
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer (Kingma & Ba).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with the usual defaults (`beta1=0.9`, `beta2=0.999`, `eps=1e-8`).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the beta coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "parameter count changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Clips a gradient vector in place to a maximum L2 norm. Returns the norm
/// before clipping. Standard practice in the paper's reference trainers.
pub fn clip_grad_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_a_quadratic() {
        // f(x) = x^2, grad = 2x. Should converge to 0.
        let mut x = vec![5.0f32];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_on_consistent_gradient() {
        let run = |mu: f32| {
            let mut x = vec![10.0f32];
            let mut opt = Sgd::with_momentum(0.01, mu);
            for _ in 0..20 {
                opt.step(&mut x, &[1.0]);
            }
            x[0]
        };
        assert!(run(0.9) < run(0.0), "momentum should make more progress");
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut x = vec![3.0f32, -4.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let g: Vec<f32> = x.iter().map(|v| 2.0 * v).collect();
            opt.step(&mut x, &g);
        }
        assert!(x.iter().all(|v| v.abs() < 1e-2), "{x:?}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.1);
        opt.step(&mut x, &[123.0]);
        // Bias correction makes the first step ~= lr regardless of grad scale.
        assert!((x[0] + 0.1).abs() < 1e-3);
    }

    #[test]
    fn identical_replicas_stay_identical() {
        // The decentralized-weight-storage invariant (paper §4.1): applying
        // the same aggregated gradient to identical optimizer replicas keeps
        // parameters bit-identical.
        let mut a = vec![1.0f32, -2.0, 0.5];
        let mut b = a.clone();
        let mut oa = Adam::new(0.01);
        let mut ob = Adam::new(0.01);
        for step in 0..50 {
            let g: Vec<f32> = a.iter().map(|v| v * 0.3 + step as f32 * 0.01).collect();
            oa.step(&mut a, &g);
            ob.step(&mut b, &g);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut g = vec![3.0f32, 4.0];
        let norm = clip_grad_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);

        let mut small = vec![0.1f32];
        clip_grad_norm(&mut small, 1.0);
        assert_eq!(small, vec![0.1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_rejects_mismatched_lengths() {
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [0.0], &[1.0, 2.0]);
    }
}
