//! Property tests on the tensor substrate's algebraic identities.

use iswitch_tensor::{grad_vec, mlp, param_vec, set_param_vec, Activation, Module, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_f32() -> impl Strategy<Value = f32> {
    -10.0f32..10.0f32
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(small_f32(), rows * cols)
        .prop_map(move |data| Tensor::from_shape_vec(&[rows, cols], data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `(A·I) = A` and `(I·A) = A`.
    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        let i = Tensor::eye(4);
        let right = a.matmul(&i);
        let left = i.matmul(&a);
        prop_assert_eq!(right.data(), a.data());
        prop_assert_eq!(left.data(), a.data());
    }

    /// Transpose is an involution and `matmul_t` / `t_matmul` agree with
    /// explicit transposition.
    #[test]
    fn transpose_identities(a in matrix(3, 5), b in matrix(4, 5), c in matrix(3, 6)) {
        let double = a.transpose().transpose();
        prop_assert_eq!(double.data(), a.data());
        let close = |x: &[f32], y: &[f32]| {
            x.iter().zip(y).all(|(p, q)| (p - q).abs() <= 1e-3 * (1.0 + q.abs()))
        };
        let (mt, explicit_t) = (a.matmul_t(&b), a.matmul(&b.transpose()));
        prop_assert!(close(mt.data(), explicit_t.data()));
        let (tm, explicit_tm) = (a.t_matmul(&c), a.transpose().matmul(&c));
        prop_assert!(close(tm.data(), explicit_tm.data()));
    }

    /// Matrix product distributes over addition: `A(B + C) = AB + AC`.
    #[test]
    fn matmul_distributes(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()));
        }
    }

    /// Parameter flattening round-trips through arbitrary perturbations.
    #[test]
    fn param_vec_round_trips(seed in any::<u64>(), deltas in prop::collection::vec(small_f32(), 10)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = mlp(&[3, 8, 2], Activation::Tanh, None, &mut rng);
        let mut p = param_vec(&mut net);
        for (i, d) in deltas.iter().enumerate() {
            let idx = (i * 7) % p.len();
            p[idx] = *d;
        }
        set_param_vec(&mut net, &p);
        prop_assert_eq!(param_vec(&mut net), p);
    }

    /// Gradients are zero-initialized and zero after `zero_grads`.
    #[test]
    fn fresh_networks_have_zero_grads(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = mlp(&[4, 6, 3], Activation::ReLU, None, &mut rng);
        prop_assert!(grad_vec(&mut net).iter().all(|&g| g == 0.0));
    }

    /// Forward pass is batch-consistent: evaluating rows one at a time
    /// matches evaluating them as one batch.
    #[test]
    fn forward_is_batch_consistent(seed in any::<u64>(), rows in prop::collection::vec(prop::collection::vec(small_f32(), 3), 1..5)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = mlp(&[3, 8, 2], Activation::Tanh, None, &mut rng);
        let batch = Tensor::from_rows(rows.clone());
        let batched = net.forward(&batch);
        for (r, row) in rows.iter().enumerate() {
            let single = net.forward(&Tensor::from_shape_vec(&[1, 3], row.clone()));
            for c in 0..2 {
                prop_assert!((batched.at(r, c) - single.at(0, c)).abs() < 1e-5);
            }
        }
    }
}
