//! End-to-end distributed training across crates: real agents, real
//! aggregation semantics, reward actually improving.

use iswitch::cluster::{
    run_convergence, AggregationSemantics, ConvergenceConfig, StalenessDistribution,
};
use iswitch::rl::Algorithm;

#[test]
fn four_worker_sync_a2c_converges() {
    let r = run_convergence(&ConvergenceConfig {
        max_iterations: 10_000,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    assert!(
        r.reached_target,
        "reward {} after {} iters",
        r.final_average_reward, r.iterations
    );
}

#[test]
fn four_worker_sync_dqn_converges() {
    let r = run_convergence(&ConvergenceConfig {
        max_iterations: 8_000,
        ..ConvergenceConfig::sync_main(Algorithm::Dqn)
    });
    assert!(
        r.reached_target,
        "reward {} after {} iters",
        r.final_average_reward, r.iterations
    );
}

#[test]
fn async_isw_semantics_converge_with_light_staleness() {
    // Async iSwitch aggregates all workers with low staleness — it should
    // converge close to the synchronous iteration count.
    let sync = run_convergence(&ConvergenceConfig {
        max_iterations: 12_000,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    let isw = run_convergence(&ConvergenceConfig {
        max_iterations: 12_000,
        semantics: AggregationSemantics::AsyncAggregated {
            staleness: StalenessDistribution::from_samples(&[0, 0, 0, 1]),
            bound: 3,
        },
        lr_scale: 1.0,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    assert!(sync.reached_target && isw.reached_target);
    assert!(
        (isw.iterations as f64) < 3.0 * sync.iterations as f64,
        "async iSW should stay near sync: {} vs {}",
        isw.iterations,
        sync.iterations
    );
}

#[test]
fn more_workers_do_not_slow_convergence() {
    // Gradient averaging over more workers reduces variance; iteration
    // counts should not blow up as the cluster grows.
    let two = run_convergence(&ConvergenceConfig {
        workers: 2,
        max_iterations: 12_000,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    let eight = run_convergence(&ConvergenceConfig {
        workers: 8,
        max_iterations: 12_000,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    assert!(two.reached_target && eight.reached_target);
    assert!(
        (eight.iterations as f64) < 2.0 * two.iterations as f64,
        "8 workers {} vs 2 workers {}",
        eight.iterations,
        two.iterations
    );
}

#[test]
fn quantized_transport_preserves_convergence() {
    // The INT16 extension: same target, same ballpark iteration count.
    let fp32 = run_convergence(&ConvergenceConfig {
        max_iterations: 10_000,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    let quant = run_convergence(&ConvergenceConfig {
        max_iterations: 10_000,
        quantize_clip: Some(1.0),
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    assert!(fp32.reached_target && quant.reached_target);
    assert!(
        (quant.iterations as f64) < 2.5 * fp32.iterations as f64,
        "quantization should not blow up iterations: {} vs {}",
        quant.iterations,
        fp32.iterations
    );
}

#[test]
fn curves_track_convergence_progress() {
    let r = run_convergence(&ConvergenceConfig {
        max_iterations: 3_000,
        target_reward: None,
        curve_every: 150,
        ..ConvergenceConfig::sync_main(Algorithm::A2c)
    });
    assert!(r.curve.len() > 10);
    // Later rewards should beat early ones on average.
    let mid = r.curve.len() / 2;
    let early: f32 = r.curve[..mid].iter().map(|(_, v)| v).sum::<f32>() / mid as f32;
    let late: f32 =
        r.curve[mid..].iter().map(|(_, v)| v).sum::<f32>() / (r.curve.len() - mid) as f32;
    assert!(
        late > early,
        "no learning trend: early {early:.2} vs late {late:.2}"
    );
}
