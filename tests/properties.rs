//! Property-based tests (proptest) on the core protocol and accelerator
//! invariants.

use iswitch::core::{
    num_segments, segment_gradient, Accelerator, AcceleratorConfig, ControlMessage, DataSegment,
    GradientAssembler, FLOATS_PER_SEGMENT,
};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Keep values in a range where f32 summation error stays tiny.
    -1e3f32..1e3f32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Segmentation followed by reassembly is the identity for any
    /// gradient length and contents.
    #[test]
    fn segmentation_round_trips(grad in prop::collection::vec(finite_f32(), 1..2_000)) {
        let segs = segment_gradient(&grad);
        prop_assert_eq!(segs.len(), num_segments(grad.len()));
        let mut asm = GradientAssembler::new(grad.len());
        for seg in &segs {
            asm.insert(seg).expect("valid segment");
        }
        prop_assert!(asm.is_complete());
        prop_assert_eq!(asm.into_mean(), grad);
    }

    /// Wire encoding of data segments round-trips exactly (bit-level f32).
    #[test]
    fn data_segment_wire_round_trips(
        seg in 0u64..1_000_000,
        count in 1u16..512,
        values in prop::collection::vec(any::<f32>().prop_filter("finite", |v| v.is_finite()), 0..FLOATS_PER_SEGMENT)
    ) {
        let original = DataSegment { seg, count, values };
        let decoded = DataSegment::decode(&original.encode()).expect("decodes");
        prop_assert_eq!(decoded, original);
    }

    /// The accelerator's aggregate equals the element-wise sum no matter
    /// how the workers' packets interleave.
    #[test]
    fn aggregation_is_order_invariant(
        grads in prop::collection::vec(
            prop::collection::vec(finite_f32(), 400..900), 2..5
        ),
        seed in any::<u64>(),
    ) {
        // Equalize lengths (workers share one model).
        let len = grads.iter().map(Vec::len).min().unwrap();
        let grads: Vec<Vec<f32>> = grads.into_iter().map(|mut g| { g.truncate(len); g }).collect();
        let n = grads.len();

        // Reference sum.
        let mut expect = vec![0.0f32; len];
        for g in &grads {
            for (e, v) in expect.iter_mut().zip(g) {
                *e += v;
            }
        }

        // Shuffle all packets deterministically from the seed.
        let mut packets: Vec<DataSegment> =
            grads.iter().flat_map(|g| segment_gradient(g)).collect();
        let mut state = seed | 1;
        for i in (1..packets.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            packets.swap(i, j);
        }

        let mut accel = Accelerator::new(AcceleratorConfig::default(), num_segments(len), n as u16);
        let mut asm = GradientAssembler::new(len);
        for pkt in &packets {
            if let (Some(done), _) = accel.ingest(pkt) {
                asm.insert(&done).expect("valid aggregate");
            }
        }
        prop_assert!(asm.is_complete(), "all segments must aggregate");
        let (sum, counts) = asm.into_sum();
        prop_assert!(counts.iter().all(|&c| c as usize == n));
        for (a, b) in sum.iter().zip(&expect) {
            prop_assert!((a - b).abs() <= 1e-2 * (1.0 + b.abs()),
                "sum mismatch: {} vs {}", a, b);
        }
    }

    /// Control messages survive the wire for arbitrary field values.
    #[test]
    fn control_messages_round_trip(worker_id in any::<u32>(), h in 1u32..65_536, seg in 0u64..(1u64<<48)) {
        for msg in [
            ControlMessage::Join { worker_id, grad_len: h },
            ControlMessage::Leave { worker_id },
            ControlMessage::SetH { h },
            ControlMessage::FBcast { seg },
            ControlMessage::Help { seg },
        ] {
            let decoded = ControlMessage::decode(&msg.encode()).expect("decodes");
            prop_assert_eq!(decoded, msg);
        }
    }

    /// Decoding arbitrary bytes never panics — it returns a protocol error
    /// or a structurally valid message.
    #[test]
    fn decoding_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = ControlMessage::decode(&bytes);
        let _ = DataSegment::decode(&bytes);
    }

    /// Accelerator buffers always drain back to zero after every worker
    /// contributed every segment (no leaks across rounds).
    #[test]
    fn accelerator_drains_after_full_rounds(
        len in 1usize..1_200,
        workers in 2u16..6,
        rounds in 1usize..4,
    ) {
        let grad = vec![1.0f32; len];
        let packets = segment_gradient(&grad);
        let mut accel =
            Accelerator::new(AcceleratorConfig::default(), num_segments(len), workers);
        for _ in 0..rounds {
            for _ in 0..workers {
                for pkt in &packets {
                    let _ = accel.ingest(pkt);
                }
            }
            prop_assert_eq!(accel.resident_bytes(), 0);
        }
        prop_assert_eq!(
            accel.stats().segments_emitted as usize,
            rounds * num_segments(len)
        );
    }
}
