//! End-to-end checks on the observability layer: a seeded timing run must
//! export a byte-identical metrics report and trace across repeats (the
//! property CI relies on to diff artifacts between commits), and the
//! report must carry the paper's measurement decomposition — per-stage
//! LGC/GA/LWU timings (Fig. 11) and per-link backlog histograms.

use iswitch::cluster::{run_timing_observed, Strategy, TimingConfig};
use iswitch::obs::JsonValue;
use iswitch::rl::Algorithm;

fn tiny_config(strategy: Strategy) -> TimingConfig {
    let mut cfg = TimingConfig::main_cluster(Algorithm::Ppo, strategy);
    cfg.workers = 2;
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg
}

#[test]
fn seeded_runs_export_identical_artifacts() {
    for strategy in [Strategy::SyncIsw, Strategy::AsyncIsw] {
        let cfg = tiny_config(strategy);
        let a = run_timing_observed(&cfg);
        let b = run_timing_observed(&cfg);
        assert_eq!(
            a.report_json().render(),
            b.report_json().render(),
            "{strategy:?}: metrics report must be byte-identical across seeded runs"
        );
        assert_eq!(
            a.trace.to_jsonl(),
            b.trace.to_jsonl(),
            "{strategy:?}: trace must be byte-identical across seeded runs"
        );
    }
}

#[test]
fn report_carries_stage_timings_and_link_histograms() {
    let obs = run_timing_observed(&tiny_config(Strategy::SyncIsw));
    let report = obs.report_json();

    let stages = report.get("stages").expect("report has a stages section");
    for stage in ["lgc_ns", "ga_ns", "lwu_ns"] {
        let v = stages
            .get(stage)
            .unwrap_or_else(|| panic!("stages section lacks {stage}"))
            .as_u64()
            .unwrap_or_else(|| panic!("{stage} is not an unsigned integer"));
        assert!(v > 0, "{stage} must be positive on a real run");
    }

    let metrics = report.get("metrics").expect("report embeds the registry");
    let rendered = metrics.render();
    assert!(
        rendered.contains("backlog_ns"),
        "registry must export per-link backlog histograms"
    );
    assert!(
        rendered.contains("core.switch.n000.h_hits"),
        "registry must export the switch's threshold-H hit counter"
    );

    // The whole report must round-trip through the parser, so downstream
    // tooling can consume it without a real JSON library.
    let reparsed = JsonValue::parse(&report.render()).expect("report parses back");
    assert!(reparsed.get("summary").is_some());
}

#[test]
fn trace_records_every_measured_iteration() {
    let cfg = tiny_config(Strategy::SyncIsw);
    let obs = run_timing_observed(&cfg);
    let per_worker = cfg.warmup + cfg.iterations;
    let docs: Vec<JsonValue> = obs
        .trace
        .to_jsonl()
        .lines()
        .map(|line| JsonValue::parse(line).expect("trace line parses"))
        .collect();
    let kind_count = |kind: &str| {
        docs.iter()
            .filter(|d| d.get("kind").and_then(|k| k.as_str()) == Some(kind))
            .count()
    };
    assert_eq!(
        kind_count("iteration"),
        cfg.workers * per_worker,
        "one iteration event per worker per iteration (warmup included)"
    );
    for doc in &docs {
        if doc.get("kind").and_then(|k| k.as_str()) != Some("iteration") {
            continue;
        }
        for field in ["worker", "iter", "lgc_ns", "ga_ns", "lwu_ns", "total_ns"] {
            assert!(doc.get(field).is_some(), "iteration event lacks {field}");
        }
    }
    // The causal layer rides in the same trace: run/worker metadata, packet
    // lifecycle events, and worker/switch spans.
    assert_eq!(kind_count("run"), 1, "one run-metadata event");
    assert_eq!(
        kind_count("worker"),
        cfg.workers,
        "worker IP mapping events"
    );
    assert!(kind_count("pkt.tx") > 0, "packet lifecycle events present");
    assert!(kind_count("pkt.rx") > 0, "packet lifecycle events present");
    let span_names: Vec<&str> = docs
        .iter()
        .filter(|d| d.get("kind").and_then(|k| k.as_str()) == Some("span"))
        .filter_map(|d| d.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in [
        "worker.compute",
        "worker.aggregation",
        "worker.update",
        "switch.agg_window",
    ] {
        assert!(
            span_names.contains(&expected),
            "trace lacks {expected} spans (got {span_names:?})"
        );
    }
}
