//! Cross-crate integration tests for the multi-tenant fabric
//! (DESIGN.md §16), driven entirely through the `iswitch` facade the
//! way downstream users would: tenants with heterogeneous strategies
//! share one fabric, quotas shield small jobs, and everything stays
//! byte-deterministic across repeats and thread counts.

use iswitch::cluster::{run_multi_tenant, MultiJobConfig, Strategy, TenantSpec, TimingConfig};
use iswitch::netsim::SimDuration;
use iswitch::rl::Algorithm;

fn job(algorithm: Algorithm, strategy: Strategy, seed: u64) -> TimingConfig {
    let mut cfg = TimingConfig::main_cluster(algorithm, strategy);
    cfg.iterations = 4;
    cfg.warmup = 1;
    cfg.seed = seed;
    cfg
}

fn artifacts(cfg: &MultiJobConfig) -> Vec<(String, String)> {
    run_multi_tenant(cfg)
        .tenants
        .iter()
        .map(|t| {
            (
                t.observation.report_json().render(),
                t.observation.trace.to_jsonl(),
            )
        })
        .collect()
}

/// A quota sized above a tenant's demand makes the shared fabric
/// invisible: its artifacts match a dedicated-fabric run byte for byte
/// even while an unquota'd neighbour over-demands the pool (I6).
#[test]
fn quota_covered_tenant_is_byte_identical_to_dedicated_fabric() {
    let victim = TenantSpec::new("victim", 1, job(Algorithm::Ppo, Strategy::SyncIsw, 7))
        .with_quota(32, 1 << 24);
    let aggressor = TenantSpec::new("aggressor", 2, job(Algorithm::A2c, Strategy::SyncIsw, 8))
        .with_join_at(SimDuration::from_millis(5));

    let mut shared = MultiJobConfig::new(vec![victim.clone(), aggressor]);
    shared.fabric.slots = 40;
    let mut dedicated = MultiJobConfig::new(vec![victim]);
    dedicated.fabric.slots = 40;

    let shared_art = artifacts(&shared);
    assert_eq!(
        shared_art[0],
        artifacts(&dedicated)[0],
        "quota-covered tenant perturbed by a contending neighbour"
    );

    let out = run_multi_tenant(&shared);
    assert_eq!(
        out.tenants[0].slot_denials, 0,
        "victim quota must cover its demand"
    );
    assert!(
        out.tenants[1].fallback_rounds > 0,
        "aggressor must over-demand a 40-slot fabric"
    );
}

/// Contended runs with churn are replay-stable and thread-invariant:
/// same spec, same bytes, at any `--threads`.
#[test]
fn contended_churny_run_is_deterministic_across_threads() {
    let mk = |threads: usize| {
        let mut cfg = MultiJobConfig::new(vec![
            TenantSpec::new("a", 1, job(Algorithm::Ppo, Strategy::SyncIsw, 11))
                .with_quota(16, 1 << 20),
            TenantSpec::new("b", 2, job(Algorithm::Dqn, Strategy::AsyncIsw, 12))
                .with_join_at(SimDuration::from_millis(10)),
            TenantSpec::new("c", 3, job(Algorithm::Ddpg, Strategy::SyncIsw, 13))
                .with_reset_at(SimDuration::from_millis(30)),
        ]);
        cfg.fabric.slots = 24;
        cfg.threads = threads;
        cfg
    };

    let base = artifacts(&mk(1));
    assert_eq!(base, artifacts(&mk(1)), "run-twice divergence");
    assert_eq!(base, artifacts(&mk(2)), "2-thread divergence");
    assert_eq!(base, artifacts(&mk(4)), "4-thread divergence");
}
