//! Cross-crate invariant: the gradient a worker receives from the
//! simulated in-switch aggregation equals the locally computed mean of all
//! workers' gradients — the mathematical equivalence that lets one
//! synchronous convergence run stand in for PS, AllReduce, and iSwitch
//! (paper §5.3).

use std::any::Any;

use iswitch::core::{
    decode_data, gradient_packets, ExtensionConfig, GradientAssembler, IswitchExtension,
};
use iswitch::netsim::{
    build_star, HostApp, HostCtx, Packet, PortId, SimDuration, Simulator, TopologyConfig,
};
use iswitch::rl::{make_lite_agent, Algorithm};

/// Pushes a fixed gradient once and reassembles the broadcast mean.
struct OneShotWorker {
    grad: Vec<f32>,
    delay_us: u64,
    asm: GradientAssembler,
    result: Option<Vec<f32>>,
}

impl OneShotWorker {
    fn new(grad: Vec<f32>, delay_us: u64) -> Self {
        let asm = GradientAssembler::new(grad.len());
        OneShotWorker {
            grad,
            delay_us,
            asm,
            result: None,
        }
    }
}

impl HostApp for OneShotWorker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.set_timer(SimDuration::from_micros(self.delay_us), 0);
    }
    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, _token: u64) {
        for pkt in gradient_packets(ctx.ip(), &self.grad) {
            ctx.send(pkt);
        }
    }
    fn on_packet(&mut self, _ctx: &mut HostCtx<'_, '_>, pkt: Packet) {
        if let Some(seg) = decode_data(&pkt) {
            if self.result.is_none() && self.asm.insert(&seg).unwrap_or(false) {
                let asm = std::mem::replace(&mut self.asm, GradientAssembler::new(self.grad.len()));
                self.result = Some(asm.into_mean());
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Pushes real RL gradients (from the actual algorithms) through the
/// simulated switch and checks the result against the local mean.
fn assert_switch_matches_local_mean(alg: Algorithm) {
    // Real gradients from real agents, identical initial weights.
    let n = 4;
    let mut agents: Vec<_> = (0..n).map(|w| make_lite_agent(alg, w as u64)).collect();
    let shared = agents[0].params();
    let mut grads = Vec::new();
    for a in agents.iter_mut() {
        a.set_params(&shared);
        let mut g = a.compute_gradient();
        // DQN/DDPG warm-up gradients are zero; nudge so the test is
        // non-trivial regardless of warm-up state.
        for (i, x) in g.iter_mut().enumerate() {
            *x += (i % 17) as f32 * 1e-3;
        }
        grads.push(g);
    }
    let len = grads[0].len();
    let mut expect = vec![0.0f32; len];
    for g in &grads {
        for (e, v) in expect.iter_mut().zip(g) {
            *e += v / n as f32;
        }
    }

    let mut sim = Simulator::new();
    let apps: Vec<Box<dyn HostApp>> = grads
        .iter()
        .enumerate()
        .map(|(w, g)| Box::new(OneShotWorker::new(g.clone(), w as u64 * 7)) as Box<dyn HostApp>)
        .collect();
    let ext = IswitchExtension::new(ExtensionConfig::for_star(
        (0..n).map(PortId::new).collect(),
        len,
    ));
    let star = build_star(
        &mut sim,
        apps,
        Some(Box::new(ext)),
        &TopologyConfig::default(),
    );
    sim.run_until_idle();

    for &h in &star.hosts {
        let worker = sim
            .device::<iswitch::netsim::Host>(h)
            .app::<OneShotWorker>();
        let got = worker.result.as_ref().expect("aggregation completed");
        assert_eq!(got.len(), expect.len());
        let mut worst = 0.0f32;
        for (a, b) in got.iter().zip(&expect) {
            worst = worst.max((a - b).abs());
        }
        assert!(
            worst < 1e-4,
            "{alg}: switch mean deviates from local mean by {worst}"
        );
    }
}

#[test]
fn switch_aggregation_equals_local_mean_a2c() {
    assert_switch_matches_local_mean(Algorithm::A2c);
}

#[test]
fn switch_aggregation_equals_local_mean_ppo() {
    assert_switch_matches_local_mean(Algorithm::Ppo);
}

#[test]
fn switch_aggregation_equals_local_mean_ddpg() {
    assert_switch_matches_local_mean(Algorithm::Ddpg);
}
