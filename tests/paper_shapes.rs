//! Integration tests asserting the paper's qualitative results — who
//! wins, where crossovers fall — at quick experiment scale.

use iswitch::cluster::experiments::{fig15, fig8, Scale};
use iswitch::cluster::{run_timing, Strategy, TimingConfig};
use iswitch::rl::Algorithm;

fn quick(alg: Algorithm, strategy: Strategy) -> TimingConfig {
    let mut cfg = TimingConfig::main_cluster(alg, strategy);
    cfg.iterations = 8;
    cfg.warmup = 2;
    cfg
}

#[test]
fn isw_reduces_aggregation_time_by_a_large_factor() {
    // Paper Fig. 12: 81.6%–85.8% reduction in aggregation time vs PS for
    // the large models.
    for alg in [Algorithm::Dqn, Algorithm::A2c] {
        let ps = run_timing(&quick(alg, Strategy::SyncPs));
        let isw = run_timing(&quick(alg, Strategy::SyncIsw));
        let reduction =
            1.0 - isw.breakdown.aggregation.as_secs_f64() / ps.breakdown.aggregation.as_secs_f64();
        assert!(
            reduction > 0.7,
            "{alg}: aggregation reduction only {:.0}%",
            reduction * 100.0
        );
    }
}

#[test]
fn aggregation_dominates_baseline_iterations() {
    // Paper Fig. 4: gradient aggregation takes 49.9%–83.2% of each
    // PS/AR iteration.
    for alg in Algorithm::ALL {
        for strategy in [Strategy::SyncPs, Strategy::SyncAr] {
            let r = run_timing(&quick(alg, strategy));
            let share = r.breakdown.aggregation_share();
            assert!(
                (0.35..0.95).contains(&share),
                "{alg} {strategy:?}: aggregation share {share:.2} out of plausible range"
            );
        }
    }
}

#[test]
fn sync_speedup_factors_are_in_paper_territory() {
    // Paper Table 3 (sync iSW over PS): 3.66x (DQN) down to 1.72x (PPO).
    let dqn_ps = run_timing(&quick(Algorithm::Dqn, Strategy::SyncPs));
    let dqn_isw = run_timing(&quick(Algorithm::Dqn, Strategy::SyncIsw));
    let dqn_speedup = dqn_ps.per_iteration.as_secs_f64() / dqn_isw.per_iteration.as_secs_f64();
    assert!(
        (2.0..5.0).contains(&dqn_speedup),
        "DQN iSW speedup {dqn_speedup:.2}"
    );

    let ppo_ps = run_timing(&quick(Algorithm::Ppo, Strategy::SyncPs));
    let ppo_isw = run_timing(&quick(Algorithm::Ppo, Strategy::SyncIsw));
    let ppo_speedup = ppo_ps.per_iteration.as_secs_f64() / ppo_isw.per_iteration.as_secs_f64();
    assert!(
        (1.1..2.5).contains(&ppo_speedup),
        "PPO iSW speedup {ppo_speedup:.2}"
    );
    // Larger models gain more (the paper's DQN > PPO ordering).
    assert!(dqn_speedup > ppo_speedup);
}

#[test]
fn ar_ps_crossover_matches_model_size() {
    // Paper Table 3: AR speeds up DQN/A2C (1.97x, 1.62x) but slows down
    // PPO/DDPG (0.91x, 0.90x).
    let speedup = |alg| {
        let ps = run_timing(&quick(alg, Strategy::SyncPs));
        let ar = run_timing(&quick(alg, Strategy::SyncAr));
        ps.per_iteration.as_secs_f64() / ar.per_iteration.as_secs_f64()
    };
    assert!(
        speedup(Algorithm::Dqn) > 1.3,
        "AR should clearly win on DQN"
    );
    assert!(speedup(Algorithm::Ppo) < 1.05, "AR should not win on PPO");
    assert!(speedup(Algorithm::Ddpg) < 1.05, "AR should not win on DDPG");
}

#[test]
fn async_isw_has_lower_staleness_than_async_ps() {
    // §6.2: faster aggregation ⇒ fresher gradients.
    for alg in [Algorithm::Dqn, Algorithm::A2c] {
        let ps = run_timing(&quick(alg, Strategy::AsyncPs));
        let isw = run_timing(&quick(alg, Strategy::AsyncIsw));
        let ps_mean = ps.mean_staleness().expect("ps staleness");
        let isw_mean = isw.mean_staleness().expect("isw staleness");
        assert!(
            isw_mean <= ps_mean + 0.3,
            "{alg}: iSW staleness {isw_mean:.2} vs PS {ps_mean:.2}"
        );
    }
}

#[test]
fn scalability_ranking_matches_fig15() {
    // Paper Fig. 15: at rack scale, iSW > PS > AR for synchronous PPO.
    let scale = Scale {
        scalability_workers: vec![4, 12],
        ..Scale::quick()
    };
    let series = fig15(
        Algorithm::Ppo,
        &[Strategy::SyncPs, Strategy::SyncAr, Strategy::SyncIsw],
        &scale,
    );
    let at12 = |label: &str| {
        series
            .iter()
            .find(|s| s.strategy == label)
            .expect("series present")
            .speedup[1]
    };
    let (ps, ar, isw) = (at12("PS"), at12("AR"), at12("iSW"));
    assert!(isw > ps, "iSW {isw:.2} should out-scale PS {ps:.2}");
    assert!(ps > ar, "PS {ps:.2} should out-scale AR {ar:.2}");
    assert!(
        isw > 2.0,
        "iSW should stay near the ideal 3.0x at 12 workers, got {isw:.2}"
    );
}

#[test]
fn on_the_fly_wins_for_all_models() {
    for row in fig8(4) {
        assert!(row.on_the_fly_ms < row.conventional_ms, "{}", row.algorithm);
    }
}
