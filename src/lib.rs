//! # iswitch
//!
//! A full reproduction of **"Accelerating Distributed Reinforcement
//! Learning with In-Switch Computing"** (Li et al., ISCA 2019) in safe
//! Rust: the in-switch gradient-aggregation accelerator, its network
//! protocol and control plane, hierarchical rack-scale aggregation, the
//! PS/AllReduce baselines, the four RL benchmarks (DQN, A2C, PPO, DDPG),
//! and the full evaluation harness regenerating every table and figure of
//! the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`netsim`] — deterministic discrete-event network simulator;
//! * [`tensor`] — dense tensors, MLPs with manual backprop, optimizers;
//! * [`rl`] — environments and the four training algorithms;
//! * [`core`] — the iSwitch protocol, accelerator, and switch extension;
//! * [`cluster`] — distributed-training strategies and experiment runners;
//! * [`obs`] — metrics registry, JSON rendering, and structured tracing.
//!
//! ## Quickstart
//!
//! ```no_run
//! use iswitch::cluster::{run_timing, Strategy, TimingConfig};
//! use iswitch::rl::Algorithm;
//!
//! // Per-iteration time of synchronous iSwitch vs the PS baseline on PPO.
//! let ps = run_timing(&TimingConfig::main_cluster(Algorithm::Ppo, Strategy::SyncPs));
//! let isw = run_timing(&TimingConfig::main_cluster(Algorithm::Ppo, Strategy::SyncIsw));
//! println!("PS {} vs iSW {}", ps.per_iteration, isw.per_iteration);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the per-table/figure regeneration binaries.

#![warn(missing_docs)]

pub use iswitch_cluster as cluster;
pub use iswitch_core as core;
pub use iswitch_netsim as netsim;
pub use iswitch_obs as obs;
pub use iswitch_rl as rl;
pub use iswitch_tensor as tensor;
