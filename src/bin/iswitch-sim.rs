//! Command-line driver for the iSwitch simulator.
//!
//! ```console
//! $ iswitch-sim timing --algorithm dqn --strategy isw --workers 4
//! $ iswitch-sim timing --algorithm ppo --strategy ar --workers 12 --per-rack 3
//! $ iswitch-sim convergence --algorithm a2c --workers 4 --max-iterations 8000
//! $ iswitch-sim scalability --algorithm ppo
//! ```

use std::io::BufWriter;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;

use iswitch::cluster::analyze::TraceAnalysis;
use iswitch::cluster::experiments::{fig15, Scale};
use iswitch::cluster::{
    run_chaos, run_chaos_isolation, run_convergence, run_cosim, run_multi_tenant, run_timing,
    run_timing_observed_with, ChaosConfig, ChaosSchedule, ConvergenceConfig, CosimConfig,
    IsolationConfig, MultiJobConfig, Strategy, TenantSpec, TimingConfig, TraceOptions,
    TransportKind,
};
use iswitch::core::CodecKind;
use iswitch::netsim::{EgressQueue, FattreeShape, SimDuration};
use iswitch::obs::timeseries::DEFAULT_INTERVAL_NS;
use iswitch::obs::{parse_timeseries_jsonl, JsonValue, Timeseries};
use iswitch::rl::Algorithm;

const USAGE: &str = "\
iswitch-sim — packet-level simulation of in-switch gradient aggregation

USAGE:
    iswitch-sim <COMMAND> [OPTIONS]

COMMANDS:
    timing        per-iteration time of one strategy (packet simulation)
    multi         N concurrent training jobs sharing one switch fabric:
                  per-tenant slot/byte quotas, deterministic fallback to
                  host aggregation on slot exhaustion, elastic join/reset
                  churn; per-tenant artifacts plus a fabric report
    convergence   distributed RL training to a target reward
    scalability   end-to-end speedup across cluster sizes (Fig. 15)
    chaos         seeded fault injection (link outages, loss windows,
                  delay spikes) with protocol invariants checked:
                  gradient conservation, sync barrier, staleness bound,
                  membership/update consistency, determinism, and (with
                  --isolation) cross-tenant isolation
    analyze       analyze a causal trace (from `timing --trace-out`):
                  per-round critical path with straggler attribution,
                  stage occupancy, aggregation-latency percentiles, and
                  a Chrome trace-event (Perfetto) export

OPTIONS:
    --algorithm <dqn|a2c|ppo|ddpg>     benchmark (default: ppo)
    --strategy <ps|ar|isw|async-ps|async-isw>
                                       strategy (default: isw; timing only)
    --workers <N>                      worker count (default: 4)
    --per-rack <K>                     build a ToR/Core tree with K workers
                                       per rack (default: single switch)
    --per-agg <F>                      with --per-rack, group F racks per
                                       aggregation switch (3-level tree)
    --fattree <PODS>                   build the sharded fat-tree: PODS AGG
                                       subtrees (one engine domain each plus
                                       the core), --per-agg racks per pod
                                       (default 2), --per-rack hosts per
                                       rack (default 3); the worker count is
                                       derived from the shape (timing,
                                       --strategy isw only)
    --threads <N>                      worker threads driving a --fattree
                                       run, or tenant simulations of a
                                       multi run (default 1); every
                                       artifact is byte-identical for
                                       every N
    --fidelity <timing|cosim>          timing: synthetic payloads, timing
                                       only (default); cosim: real agent
                                       gradients summed by the simulated
                                       switch — reward curve AND timing
                                       from one run (isw strategies only)
    --iterations <N>                   timing iterations (default: 20)
    --max-iterations <N>               convergence cap (default: per-algorithm)
    --seed <N>                         RNG seed (default: 42)
    --edge-loss <P>                    random per-packet loss probability on
                                       every worker edge link (timing only;
                                       exercises Help/FBcast recovery)
    --codec <f32|fixed-point|block-float|top-k>
                                       aggregation codec: how gradients are
                                       laid out on the wire and summed in
                                       the switch (default: f32, the exact
                                       legacy format; timing, cosim, and
                                       chaos, isw strategies only). Cosim
                                       additionally reports the decoded
                                       aggregate's error against the exact
                                       host-side mean
    --transport <go-back|nack|dcqcn>   reliability/congestion policy on every
                                       worker (default: go-back). go-back:
                                       switch-assisted Help/FBcast recovery;
                                       nack: NACK-on-gap; dcqcn: ECN-echo
                                       rate control (timing and chaos)
    --incast                           incast workload: every worker flushes
                                       simultaneously (zero compute jitter)
                                       through shallow bounded egress
                                       queues; composes with --workers and
                                       --fattree (timing only)
    --background <K>                   add K bursting background flows that
                                       share the edge links with the
                                       training traffic (timing only,
                                       single-switch star)
    --tenants <SPEC,...>               comma-separated tenant specs, each
                                       NAME=ALG[/STRATEGY] (multi only;
                                       default: a=ppo/isw,b=a2c/isw)
    --quota <NAME=SLOTS[/BYTES],...>   guaranteed per-tenant slot (and
                                       optional buffer-byte) quotas; the
                                       rest of the fabric is shared on
                                       demand (multi only)
    --join <NAME=MS,...>               tenants joining the fabric MS
                                       milliseconds into the run (multi
                                       only; §3.2 Join)
    --reset <NAME=MS,...>              in-band Reset of every switch of the
                                       named tenants at MS milliseconds of
                                       tenant-local time (multi only)
    --fabric-slots <N>                 aggregation slots on the shared
                                       fabric (multi only; default 65536)
    --fabric-bytes <N>                 aggregation buffer bytes on the
                                       shared fabric (multi only)
    --epoch-ms <N>                     arbitration epoch in simulated
                                       milliseconds (multi only; default 10)
    --out-dir <DIR>                    write per-tenant artifacts
                                       (NAME.report.json, NAME.trace.jsonl)
                                       plus fabric.json to DIR (multi only)
    --isolation                        run the I6 cross-tenant isolation
                                       check instead of the fault matrix: a
                                       quota'd victim shares the fabric with
                                       a slot-leaking aggressor and must be
                                       byte-unperturbed (chaos only)
    --no-quota                         isolation self-test: drop the
                                       victim's quota and *require* I6 to
                                       trip — exits non-zero if the seeded
                                       leak goes undetected (chaos
                                       --isolation only)
    --chaos-seed <N>                   fault-schedule seed (chaos only;
                                       default: 1). Same seed => the same
                                       schedule and a byte-identical report
    --faults <PATH>                    run an explicit fault schedule from a
                                       JSON file instead of generating one
                                       (chaos only; see DESIGN.md for the
                                       schema)
    --report-out <PATH>                write chaos reports as JSON Lines to
                                       PATH (chaos only)
    --metrics-out <PATH>               write the observability report (stage
                                       timings + full metrics registry) as
                                       JSON to PATH (timing only)
    --trace-out <PATH>                 stream the causal trace (packet
                                       lifecycle events, worker/switch
                                       spans, iteration summaries) as JSON
                                       Lines to PATH while the simulation
                                       runs (timing only); memory stays
                                       bounded regardless of run length
    --trace-buffer <N>                 in-memory trace ring capacity in
                                       events (default: 65536). When the
                                       bound drops events the run report
                                       records `trace.dropped` and the CLI
                                       prints a loud warning (timing only)
    --timeseries-out <PATH>            write the sampled counter tracks
                                       (queue depths, ECN marks, transport
                                       rates, shard stalls, codec effects)
                                       as JSON Lines to PATH (timing only)
    --timeseries-chrome <PATH>         write the counter tracks as Perfetto
                                       counter-track events to PATH
                                       (timing only)
    --timeseries-interval <NS>         sampling cadence in simulated
                                       nanoseconds (default: 10000)
    --trace <PATH>                     trace file to analyze (analyze only)
    --out <PATH>                       write the analysis report as JSON to
                                       PATH (analyze only)
    --chrome-out <PATH>                write a Chrome trace-event JSON
                                       (Perfetto-loadable) to PATH
                                       (analyze only)
    --timeseries <PATH>                timeseries JSONL (from `timing
                                       --timeseries-out`) to join against
                                       the trace: the report gains a
                                       per-round attribution section naming
                                       the gating link's queue/ECN activity
                                       and the gating worker's transport
                                       rate (analyze only)
";

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_algorithm(args: &[String]) -> Algorithm {
    match parse_flag(args, "--algorithm").as_deref() {
        None | Some("ppo") => Algorithm::Ppo,
        Some("dqn") => Algorithm::Dqn,
        Some("a2c") => Algorithm::A2c,
        Some("ddpg") => Algorithm::Ddpg,
        Some(other) => {
            eprintln!("unknown algorithm `{other}`");
            exit(2);
        }
    }
}

fn parse_strategy(args: &[String]) -> Strategy {
    match parse_flag(args, "--strategy").as_deref() {
        None | Some("isw") => Strategy::SyncIsw,
        Some("ps") => Strategy::SyncPs,
        Some("ar") => Strategy::SyncAr,
        Some("async-ps") => Strategy::AsyncPs,
        Some("async-isw") => Strategy::AsyncIsw,
        Some(other) => {
            eprintln!("unknown strategy `{other}`");
            exit(2);
        }
    }
}

fn parse_usize(args: &[String], name: &str) -> Option<usize> {
    parse_flag(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} expects a number, got `{v}`");
            exit(2);
        })
    })
}

fn parse_f64(args: &[String], name: &str) -> Option<f64> {
    parse_flag(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} expects a number, got `{v}`");
            exit(2);
        })
    })
}

fn parse_codec(args: &[String]) -> Option<CodecKind> {
    parse_flag(args, "--codec").map(|v| {
        v.parse::<CodecKind>().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        })
    })
}

fn write_artifact(path: &str, contents: &str) {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", parent.display());
                exit(1);
            });
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
}

fn cmd_cosim(args: &[String], alg: Algorithm, strategy: Strategy) {
    if !matches!(strategy, Strategy::SyncIsw | Strategy::AsyncIsw) {
        eprintln!(
            "--fidelity cosim drives gradients through the in-switch \
             datapath; pick --strategy isw or async-isw"
        );
        exit(2);
    }
    let mut cfg = CosimConfig::lite(alg, strategy);
    if let Some(w) = parse_usize(args, "--workers") {
        cfg.workers = w;
    }
    if let Some(n) = parse_usize(args, "--iterations") {
        cfg.iterations = n;
    }
    if let Some(s) = parse_usize(args, "--seed") {
        cfg.seed = s as u64;
    }
    if let Some(c) = parse_codec(args) {
        cfg.codec = c;
    }
    println!(
        "co-simulating {} / {} with {} workers (target reward {:?})…",
        alg,
        strategy.label(),
        cfg.workers,
        cfg.target_reward
    );
    let r = run_cosim(&cfg);
    let stride = (r.curve.len() / 20).max(1);
    for (i, (update, reward)) in r.curve.iter().enumerate() {
        if i % stride == 0 || i + 1 == r.curve.len() {
            println!("  update {update:>6}  reward {reward:>9.3}");
        }
    }
    println!(
        "{} after {} iterations ({} updates); final average reward {:.3}",
        if r.reached_target {
            "reached target"
        } else {
            "hit the budget"
        },
        r.iterations,
        r.updates,
        r.final_average_reward
    );
    println!("per-iteration time : {}", r.per_iteration);
    if let (Some(mean), Some(max)) = (r.ref_error_mean, r.ref_error_max) {
        println!(
            "aggregate ref error: mean {mean:.3e}  max {max:.3e}  ({})",
            cfg.codec
        );
    }
    if let Some(path) = parse_flag(args, "--metrics-out") {
        let mut doc = JsonValue::empty_object();
        doc.insert("artifact", JsonValue::Str("cosim".to_owned()));
        doc.insert("algorithm", JsonValue::Str(alg.to_string()));
        doc.insert("strategy", JsonValue::Str(strategy.label().to_owned()));
        if cfg.codec != CodecKind::F32 {
            // Non-default codecs only: f32 artifacts keep their exact
            // pre-codec byte layout.
            doc.insert("codec", JsonValue::Str(cfg.codec.label().to_owned()));
            if let (Some(mean), Some(max)) = (r.ref_error_mean, r.ref_error_max) {
                doc.insert("ref_error_mean", JsonValue::Float(mean));
                doc.insert("ref_error_max", JsonValue::Float(max));
            }
        }
        doc.insert("workers", JsonValue::UInt(cfg.workers as u64));
        doc.insert("iterations", JsonValue::UInt(r.iterations as u64));
        doc.insert("updates", JsonValue::UInt(r.updates));
        doc.insert("reached_target", JsonValue::Bool(r.reached_target));
        doc.insert(
            "final_average_reward",
            JsonValue::Float(f64::from(r.final_average_reward)),
        );
        doc.insert(
            "per_iteration_ns",
            JsonValue::UInt(r.per_iteration.as_nanos()),
        );
        doc.insert(
            "curve",
            JsonValue::Array(
                r.curve
                    .iter()
                    .map(|&(u, reward)| {
                        let mut pt = JsonValue::empty_object();
                        pt.insert("update", JsonValue::UInt(u));
                        pt.insert("reward", JsonValue::Float(f64::from(reward)));
                        pt
                    })
                    .collect(),
            ),
        );
        write_artifact(&path, &format!("{}\n", doc.render()));
        println!("metrics written to {path}");
    }
}

fn cmd_timing(args: &[String]) {
    let alg = parse_algorithm(args);
    let strategy = parse_strategy(args);
    match parse_flag(args, "--fidelity").as_deref() {
        None | Some("timing") => {}
        Some("cosim") => {
            cmd_cosim(args, alg, strategy);
            return;
        }
        Some(other) => {
            eprintln!("unknown fidelity `{other}` (expected `timing` or `cosim`)");
            exit(2);
        }
    }
    let mut cfg = TimingConfig::main_cluster(alg, strategy);
    if let Some(w) = parse_usize(args, "--workers") {
        cfg.workers = w;
    }
    cfg.workers_per_rack = parse_usize(args, "--per-rack").map(|k| k.max(1));
    cfg.racks_per_agg = parse_usize(args, "--per-agg").map(|f| f.max(1));
    if let Some(pods) = parse_usize(args, "--fattree") {
        let shape = FattreeShape {
            aggs: pods.max(1),
            racks_per_agg: cfg.racks_per_agg.take().unwrap_or(2),
            hosts_per_rack: cfg.workers_per_rack.take().unwrap_or(3),
        };
        cfg.workers = shape.workers();
        cfg.fattree = Some(shape);
        cfg.threads = parse_usize(args, "--threads").unwrap_or(1).max(1);
    } else if parse_usize(args, "--threads").is_some() {
        eprintln!("--threads only applies to sharded --fattree runs");
        exit(2);
    }
    if let Some(n) = parse_usize(args, "--iterations") {
        cfg.iterations = n;
    }
    if let Some(s) = parse_usize(args, "--seed") {
        cfg.seed = s as u64;
    }
    if let Some(p) = parse_f64(args, "--edge-loss") {
        if !(0.0..1.0).contains(&p) {
            eprintln!("--edge-loss expects a probability in [0, 1), got {p}");
            exit(2);
        }
        cfg.edge_loss = p;
    }
    if let Some(t) = parse_flag(args, "--transport") {
        cfg.transport = t.parse::<TransportKind>().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
    }
    if let Some(c) = parse_codec(args) {
        if c != CodecKind::F32 && !matches!(strategy, Strategy::SyncIsw | Strategy::AsyncIsw) {
            eprintln!("--codec applies to the in-switch strategies (isw, async-isw)");
            exit(2);
        }
        cfg.codec = c;
    }
    if args.iter().any(|a| a == "--incast") {
        cfg.incast = true;
        cfg.queue.get_or_insert(EgressQueue::shallow());
    }
    if let Some(k) = parse_usize(args, "--background") {
        cfg.background_flows = k;
    }
    println!(
        "simulating {} / {} with {} workers…",
        alg,
        strategy.label(),
        cfg.workers
    );
    let metrics_out = parse_flag(args, "--metrics-out");
    let trace_out = parse_flag(args, "--trace-out");
    let timeseries_out = parse_flag(args, "--timeseries-out");
    let timeseries_chrome = parse_flag(args, "--timeseries-chrome");
    let interval_ns = parse_usize(args, "--timeseries-interval")
        .map(|n| n.max(1) as u64)
        .unwrap_or(DEFAULT_INTERVAL_NS);
    let want_timeseries = timeseries_out.is_some() || timeseries_chrome.is_some();
    let r = if metrics_out.is_some() || trace_out.is_some() || want_timeseries {
        // Stream the trace to disk as the run executes and keep only a
        // bounded window in memory, so long runs stay flat.
        let mut opts = TraceOptions {
            capacity: Some(parse_usize(args, "--trace-buffer").unwrap_or(65_536)),
            stream: None,
            timeseries: want_timeseries.then(|| Arc::new(Timeseries::new(interval_ns))),
        };
        if let Some(path) = &trace_out {
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                        eprintln!("cannot create {}: {e}", parent.display());
                        exit(1);
                    });
                }
            }
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            opts.stream = Some(Box::new(BufWriter::new(file)));
        }
        let obs = run_timing_observed_with(&cfg, opts);
        if let Some(path) = &metrics_out {
            write_artifact(path, &format!("{}\n", obs.report_json().render()));
            println!("metrics written to {path}");
        }
        if let Some(path) = &trace_out {
            println!("trace streamed to {path} ({} events)", obs.trace.recorded());
        }
        if obs.trace.dropped() > 0 {
            let remedy = if trace_out.is_some() {
                "the streamed --trace-out file is complete; only the in-memory \
                 window is truncated. Raise --trace-buffer if something reads \
                 the in-memory trace."
            } else {
                "re-run with a larger --trace-buffer (default 65536) or stream \
                 with --trace-out for complete coverage."
            };
            eprintln!(
                "WARNING: trace buffer overflowed — {} event(s) dropped (recorded \
                 as trace.dropped in the run report); {remedy}",
                obs.trace.dropped()
            );
        }
        if let Some(ts) = &obs.timeseries {
            if let Some(path) = &timeseries_out {
                let mut out = Vec::new();
                ts.to_jsonl(&mut out).expect("jsonl to memory");
                write_artifact(path, &String::from_utf8(out).expect("jsonl is utf-8"));
                println!(
                    "timeseries written to {path} ({} tracks, {} samples)",
                    ts.track_count(),
                    ts.sample_count()
                );
            }
            if let Some(path) = &timeseries_chrome {
                write_artifact(path, &format!("{}\n", ts.chrome_trace().render()));
                println!("timeseries counter tracks written to {path}");
            }
        }
        obs.result
    } else {
        run_timing(&cfg)
    };
    println!("per-iteration time : {}", r.per_iteration);
    println!("  compute          : {}", r.breakdown.compute);
    println!("  aggregation      : {}", r.breakdown.aggregation);
    println!("  weight update    : {}", r.breakdown.update);
    println!(
        "  aggregation share: {:.1}%",
        r.breakdown.aggregation_share() * 100.0
    );
    if let Some(s) = r.mean_staleness() {
        println!("  mean staleness   : {s:.2}");
    }
    let t = r.transport;
    if t != Default::default() {
        println!(
            "  transport        : help={} nack={} rexmit={} ecn={} cuts={}",
            t.help_requests, t.nacks_sent, t.retransmits, t.ecn_echoes, t.rate_cuts
        );
    }
}

/// Parses `NAME=VALUE,...` per-tenant assignments.
fn parse_assignments(args: &[String], flag: &str) -> Vec<(String, String)> {
    let Some(text) = parse_flag(args, flag) else {
        return Vec::new();
    };
    text.split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let Some((name, value)) = pair.split_once('=') else {
                eprintln!("{flag} expects NAME=VALUE pairs, got `{pair}`");
                exit(2);
            };
            (name.to_owned(), value.to_owned())
        })
        .collect()
}

fn cmd_multi(args: &[String]) {
    let iterations = parse_usize(args, "--iterations");
    let seed = parse_usize(args, "--seed").map(|s| s as u64).unwrap_or(42);
    let quotas = parse_assignments(args, "--quota");
    let joins = parse_assignments(args, "--join");
    let resets = parse_assignments(args, "--reset");

    let spec_text =
        parse_flag(args, "--tenants").unwrap_or_else(|| "a=ppo/isw,b=a2c/isw".to_owned());
    let mut specs = Vec::new();
    for (i, spec) in spec_text.split(',').filter(|s| !s.is_empty()).enumerate() {
        let Some((name, job_text)) = spec.split_once('=') else {
            eprintln!("--tenants expects NAME=ALG[/STRATEGY] specs, got `{spec}`");
            exit(2);
        };
        let (alg_text, strat_text) = match job_text.split_once('/') {
            Some((a, s)) => (a, s),
            None => (job_text, "isw"),
        };
        let alg = match alg_text {
            "ppo" => Algorithm::Ppo,
            "dqn" => Algorithm::Dqn,
            "a2c" => Algorithm::A2c,
            "ddpg" => Algorithm::Ddpg,
            other => {
                eprintln!("tenant `{name}`: unknown algorithm `{other}`");
                exit(2);
            }
        };
        let strategy = match strat_text {
            "isw" => Strategy::SyncIsw,
            "ps" => Strategy::SyncPs,
            "ar" => Strategy::SyncAr,
            "async-ps" => Strategy::AsyncPs,
            "async-isw" => Strategy::AsyncIsw,
            other => {
                eprintln!("tenant `{name}`: unknown strategy `{other}`");
                exit(2);
            }
        };
        let mut job = TimingConfig::main_cluster(alg, strategy);
        if let Some(n) = iterations {
            job.iterations = n;
        }
        job.seed = seed.wrapping_add(i as u64);
        let mut tenant = TenantSpec::new(name, i as u64 + 1, job);
        let assigned = |list: &[(String, String)]| -> Option<String> {
            list.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone())
        };
        if let Some(q) = assigned(&quotas) {
            let (slots_text, bytes_text) = match q.split_once('/') {
                Some((s, b)) => (s.to_owned(), Some(b.to_owned())),
                None => (q, None),
            };
            let slots: u32 = slots_text.parse().unwrap_or_else(|_| {
                eprintln!("tenant `{name}`: --quota expects a slot count, got `{slots_text}`");
                exit(2);
            });
            let bytes: usize = bytes_text.map_or(1 << 24, |b| {
                b.parse().unwrap_or_else(|_| {
                    eprintln!("tenant `{name}`: --quota expects a byte count, got `{b}`");
                    exit(2);
                })
            });
            tenant = tenant.with_quota(slots, bytes);
        }
        let millis = |v: String, flag: &str| -> SimDuration {
            SimDuration::from_millis(v.parse().unwrap_or_else(|_| {
                eprintln!("tenant `{name}`: {flag} expects milliseconds, got `{v}`");
                exit(2);
            }))
        };
        if let Some(at) = assigned(&joins) {
            tenant = tenant.with_join_at(millis(at, "--join"));
        }
        if let Some(at) = assigned(&resets) {
            tenant = tenant.with_reset_at(millis(at, "--reset"));
        }
        specs.push(tenant);
    }
    for (n, _) in quotas.iter().chain(&joins).chain(&resets) {
        if !specs.iter().any(|t| t.name == *n) {
            eprintln!("`{n}` names no tenant in --tenants");
            exit(2);
        }
    }

    let mut cfg = MultiJobConfig::new(specs);
    if let Some(s) = parse_usize(args, "--fabric-slots") {
        cfg.fabric.slots = s as u32;
    }
    if let Some(b) = parse_usize(args, "--fabric-bytes") {
        cfg.fabric.buffer_bytes = b;
    }
    if let Some(ms) = parse_usize(args, "--epoch-ms") {
        cfg.fabric.epoch = SimDuration::from_millis(ms.max(1) as u64);
    }
    cfg.threads = parse_usize(args, "--threads").unwrap_or(1).max(1);

    println!(
        "simulating {} tenants on a shared fabric ({} slots, epoch {})…",
        cfg.tenants.len(),
        cfg.fabric.slots,
        cfg.fabric.epoch
    );
    let out = run_multi_tenant(&cfg);
    println!(
        "{:<10} {:<10} {:>16} {:>9} {:>10} {:>12}",
        "tenant", "strategy", "per-iteration", "denials", "fallback", "finished"
    );
    for (t, spec) in out.tenants.iter().zip(&cfg.tenants) {
        println!(
            "{:<10} {:<10} {:>16} {:>9} {:>9.1}% {:>12}",
            t.name,
            spec.job.strategy.label(),
            t.observation.result.per_iteration.to_string(),
            t.slot_denials,
            t.fallback_fraction() * 100.0,
            SimDuration::from_nanos(t.finished_at.as_nanos()).to_string(),
        );
    }

    if let Some(dir) = parse_flag(args, "--out-dir") {
        for t in &out.tenants {
            let report = format!("{}/{}.report.json", dir, t.name);
            write_artifact(
                &report,
                &format!("{}\n", t.observation.report_json().render()),
            );
            let trace = format!("{}/{}.trace.jsonl", dir, t.name);
            write_artifact(&trace, &t.observation.trace.to_jsonl());
        }
        let fabric = format!("{dir}/fabric.json");
        write_artifact(&fabric, &format!("{}\n", out.fabric_report.render()));
        println!(
            "per-tenant artifacts and fabric.json written to {dir}/ ({} tenants)",
            out.tenants.len()
        );
    }
}

fn cmd_convergence(args: &[String]) {
    let alg = parse_algorithm(args);
    let mut cfg = ConvergenceConfig::sync_main(alg);
    if let Some(w) = parse_usize(args, "--workers") {
        cfg.workers = w;
    }
    if let Some(n) = parse_usize(args, "--max-iterations") {
        cfg.max_iterations = n;
    }
    if let Some(s) = parse_usize(args, "--seed") {
        cfg.seed = s as u64;
    }
    cfg.curve_every = (cfg.max_iterations / 20).max(1);
    println!(
        "training {} with {} workers (target reward {:?})…",
        alg, cfg.workers, cfg.target_reward
    );
    let r = run_convergence(&cfg);
    for (iter, reward) in &r.curve {
        println!("  iter {iter:>6}  reward {reward:>9.1}");
    }
    println!(
        "{} after {} iterations; final average reward {:.1}",
        if r.reached_target {
            "converged"
        } else {
            "hit the cap"
        },
        r.iterations,
        r.final_average_reward
    );
}

fn cmd_scalability(args: &[String]) {
    let alg = parse_algorithm(args);
    let scale = Scale {
        scalability_workers: vec![4, 6, 9, 12],
        ..Scale::quick()
    };
    println!("scalability of {alg} (sync), 3 workers per rack…");
    let series = fig15(
        alg,
        &[Strategy::SyncPs, Strategy::SyncAr, Strategy::SyncIsw],
        &scale,
    );
    for s in series {
        let pts: Vec<String> = s
            .workers
            .iter()
            .zip(&s.speedup)
            .map(|(n, x)| format!("N={n}: {x:.2}x"))
            .collect();
        println!("  {:>4}  {}", s.strategy, pts.join("  "));
    }
}

/// The I6 cross-tenant isolation check (`chaos --isolation`). With
/// `--no-quota` the polarity flips: the run *must* trip (the harness
/// self-test), and an undetected leak exits non-zero.
fn cmd_chaos_isolation(args: &[String]) {
    let chaos_seed = parse_usize(args, "--chaos-seed").unwrap_or(1) as u64;
    let expect_trip = args.iter().any(|a| a == "--no-quota");
    let mut cfg = IsolationConfig::new(chaos_seed);
    if expect_trip {
        cfg.victim_quota = 0;
    }
    if let Some(n) = parse_usize(args, "--iterations") {
        cfg.iterations = n;
    }
    let report = run_chaos_isolation(&cfg);
    println!(
        "I6 isolation seed={} quota={} victim: denials={} fallback={} — {}",
        chaos_seed,
        cfg.victim_quota,
        report.victim_denials,
        report.victim_fallback_rounds,
        if report.passed() { "ok" } else { "VIOLATED" }
    );
    for v in &report.violations {
        println!("    {v}");
    }
    if let Some(path) = parse_flag(args, "--report-out") {
        write_artifact(&path, &format!("{}\n", report.to_json().render()));
        println!("report written to {path}");
    }
    if expect_trip {
        if report.passed() {
            eprintln!("self-test FAILED: the seeded slot leak went undetected without a quota");
            exit(1);
        }
        println!("self-test ok: the unquota'd victim was perturbed, as the leak predicts");
    } else if !report.passed() {
        exit(1);
    }
}

fn cmd_chaos(args: &[String]) {
    if args.iter().any(|a| a == "--isolation") {
        cmd_chaos_isolation(args);
        return;
    }
    let alg = parse_algorithm(args);
    let strategies: Vec<Strategy> = if parse_flag(args, "--strategy").is_some() {
        vec![parse_strategy(args)]
    } else {
        vec![
            Strategy::SyncPs,
            Strategy::SyncAr,
            Strategy::SyncIsw,
            Strategy::AsyncPs,
            Strategy::AsyncIsw,
        ]
    };
    let chaos_seed = parse_usize(args, "--chaos-seed").unwrap_or(1) as u64;
    let schedule = parse_flag(args, "--faults").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        ChaosSchedule::from_json(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(2);
        })
    });
    let mut reports = Vec::new();
    let mut failed = false;
    for strategy in strategies {
        let mut cfg = ChaosConfig::new(alg, strategy, chaos_seed);
        if let Some(w) = parse_usize(args, "--workers") {
            cfg.workers = w;
        }
        if let Some(n) = parse_usize(args, "--iterations") {
            cfg.iterations = n;
        }
        if let Some(s) = parse_usize(args, "--seed") {
            cfg.seed = s as u64;
        }
        if let Some(t) = parse_flag(args, "--transport") {
            cfg.transport = t.parse::<TransportKind>().unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(2);
            });
        }
        if let Some(c) = parse_codec(args) {
            if matches!(strategy, Strategy::SyncIsw | Strategy::AsyncIsw) {
                cfg.codec = c;
            }
        }
        cfg.schedule = schedule.clone();
        let report = run_chaos(&cfg);
        println!(
            "{:<9} faults={:<2} completed={:?} rounds_checked={} help={} — {}",
            strategy.label(),
            report.faults_applied,
            report.completed,
            report.rounds_checked,
            report.help_requests,
            if report.passed() { "ok" } else { "VIOLATED" }
        );
        for v in &report.violations {
            println!("    {v}");
        }
        failed |= !report.passed();
        reports.push(report.to_json().render());
    }
    if let Some(path) = parse_flag(args, "--report-out") {
        write_artifact(&path, &(reports.join("\n") + "\n"));
        println!("reports written to {path}");
    }
    if failed {
        exit(1);
    }
}

fn cmd_analyze(args: &[String]) {
    let Some(path) = parse_flag(args, "--trace") else {
        eprintln!("analyze needs --trace <PATH> (a JSONL trace from `timing --trace-out`)");
        exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let mut analysis = TraceAnalysis::from_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(2);
    });
    if let Some(ts_path) = parse_flag(args, "--timeseries") {
        let ts_text = std::fs::read_to_string(&ts_path).unwrap_or_else(|e| {
            eprintln!("cannot read {ts_path}: {e}");
            exit(1);
        });
        let tracks = parse_timeseries_jsonl(&ts_text).unwrap_or_else(|e| {
            eprintln!("{ts_path}: {e}");
            exit(2);
        });
        analysis = analysis.with_timeseries(tracks);
    }
    print!("{}", analysis.summary_text());
    if let Some(out) = parse_flag(args, "--out") {
        write_artifact(&out, &format!("{}\n", analysis.report_json().render()));
        println!("report written to {out}");
    }
    if let Some(out) = parse_flag(args, "--chrome-out") {
        write_artifact(&out, &format!("{}\n", analysis.chrome_trace().render()));
        println!("chrome trace written to {out}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("timing") => cmd_timing(&args[1..]),
        Some("multi") => cmd_multi(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("convergence") => cmd_convergence(&args[1..]),
        Some("scalability") => cmd_scalability(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            exit(2);
        }
    }
}
